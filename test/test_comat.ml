(* Incremental co-materialization: redundant copies of hot table versions,
   maintained per-write through delta rules, must stay byte-identical to
   full regeneration, reads through them must answer exactly like the plain
   delta code, and the bugs the feature flushed out (stale view-cache hits,
   advisor division by zero, fallback stacks ignoring an intermediate copy)
   must stay fixed. *)

module I = Inverda.Api
module G = Inverda.Genealogy
module A = Inverda.Advisor
module CC = Scenarios.Comat_check

(* --- smoke: one copy, writes through every version -------------------------- *)

let test_smoke () =
  let t = Scenarios.Tasky.setup_full ~tasks:6 () in
  I.comat_add t "TasKy2.Task";
  let copies = I.comat_list t in
  Alcotest.(check int) "one copy" 1 (List.length copies);
  (* writes entering at every co-existing version keep the copy exact *)
  ignore
    (I.exec_sql t
       "INSERT INTO TasKy.Task (author, task, prio) VALUES ('Ann', 'smoke-a', 1)");
  ignore
    (I.exec_sql t
       "INSERT INTO \"Do!.Todo\" (author, task) VALUES ('Bob', 'smoke-b')");
  ignore (I.exec_sql t "UPDATE TasKy2.Task SET prio = 7 WHERE task = 'smoke-a'");
  ignore (I.exec_sql t "DELETE FROM TasKy.Task WHERE task = 'task-1'");
  I.comat_check t;
  Alcotest.(check int) "reads at the copied version see the writes" 1
    (I.query_int t
       "SELECT COUNT(*) FROM TasKy2.Task WHERE task = 'smoke-a' AND prio = 7");
  let cm = List.hd (I.comat_list t) in
  Alcotest.(check bool) "maintenance was accounted" true (cm.G.cm_writes > 0);
  (* dropping the copy falls back to the regular delta code, same answers *)
  let with_copy =
    I.query_rows t "SELECT * FROM TasKy2.Task" |> List.sort compare
  in
  I.comat_drop t "TasKy2.Task";
  Alcotest.(check bool) "no copies left" true (I.comat_list t = []);
  Alcotest.(check bool) "plain delta code agrees" true
    (with_copy = (I.query_rows t "SELECT * FROM TasKy2.Task" |> List.sort compare))

let test_add_guards () =
  let t = Scenarios.Tasky.setup_full ~tasks:3 () in
  I.comat_add t "TasKy2.Task";
  (match I.comat_add t "TasKy2.Task" with
  | exception Inverda.Comat.Comat_error _ -> ()
  | () -> Alcotest.fail "double comat_add accepted");
  match I.comat_add t "TasKy.Task" with
  | exception Inverda.Comat.Comat_error _ -> ()
  | () -> Alcotest.fail "copy of a physical table version accepted"

(* --- the coherence sweeps (acceptance criterion) ----------------------------- *)

let test_tasky_coherence () =
  let r = CC.check_tasky ~tasks:30 ~ops:40 () in
  Alcotest.(check int) "two checkpoints per materialization" 10
    r.CC.checkpoints;
  Alcotest.(check bool) "copies live at the end" true (r.CC.copies > 0);
  Alcotest.(check bool) "incremental maintenance fired" true
    (r.CC.incremental > 0);
  Alcotest.(check bool) "maintenance wrote rows" true
    (r.CC.maintenance_rows > 0)

let test_wikimedia_coherence () =
  let r = CC.check_wikimedia ~versions:6 ~pages:8 ~links:12 () in
  Alcotest.(check int) "all four checkpoints ran" 4 r.CC.checkpoints;
  Alcotest.(check bool) "copies at mid and far end" true (r.CC.copies >= 2)

(* --- regression: view cache vs delta-rule maintenance (satellite 1) ---------- *)

let test_no_stale_cache_after_maintenance () =
  let t = Scenarios.Tasky.setup_full ~tasks:8 () in
  I.comat_add t "TasKy2.Task";
  let read () =
    I.query_rows t "SELECT author, task FROM TasKy2.Task" |> List.sort compare
  in
  let before = read () in
  ignore (read ());
  let h, _ = I.cache_stats t in
  Alcotest.(check bool) "reads through the copy are cached" true (h > 0);
  (* write through ANOTHER version: the copy is updated by the delta-rule
     maintenance path, not by the propagation triggers — it must bump the
     same per-table epochs the cache keys on, so a stale hit is impossible *)
  ignore
    (I.exec_sql t
       "INSERT INTO TasKy.Task (author, task, prio) VALUES ('Eve', 'cache-bust', 2)");
  let after = read () in
  Alcotest.(check int) "re-read sees the maintained row"
    (List.length before + 1)
    (List.length after);
  Alcotest.(check int) "exactly the written row" 1
    (I.query_int t "SELECT COUNT(*) FROM TasKy2.Task WHERE task = 'cache-bust'");
  I.comat_check t

(* --- regression: advisor on an all-zero profile (satellite 2) ---------------- *)

let test_advisor_zero_profile () =
  let t = Scenarios.Tasky.setup_full ~tasks:4 () in
  let cur = I.current_materialization t in
  let conservative = function
    | None -> Alcotest.fail "advise returned no recommendation"
    | Some (r : A.recommendation) ->
      Alcotest.(check (list int)) "keeps the current materialization" cur
        r.A.materialization;
      Alcotest.(check bool) "no arbitrary tie-break alternatives" true
        (r.A.alternatives = [])
  in
  (* no observed traffic at all, and explicit all-zero weights: neither may
     divide by zero or recommend migrating off the only materialization *)
  conservative (I.advise t []);
  conservative (I.advise t [ ("TasKy", 0.0); ("TasKy2", 0.0); ("Do!", 0.0) ]);
  Alcotest.(check bool) "no copies advised for an empty profile" true
    (I.advise_comat t [] = []);
  Alcotest.(check bool) "no copies advised for a zero profile" true
    (I.advise_comat t [ ("TasKy2", 0.0) ] = []);
  (* sanity: a real profile still produces a full scored ranking *)
  match I.advise t [ ("TasKy2", 1.0) ] with
  | Some r -> Alcotest.(check bool) "non-degenerate" true (r.A.alternatives <> [])
  | None -> Alcotest.fail "real profile got no recommendation"

let test_advise_comat_budget () =
  let t = Scenarios.Tasky.setup_full ~tasks:10 () in
  let profile = [ ("TasKy2", 0.7); ("Do!", 0.3) ] in
  let unlimited = I.advise_comat t profile in
  Alcotest.(check bool) "copies recommended for remote hot versions" true
    (unlimited <> []);
  List.iter
    (fun (c : A.comat_recommendation) ->
      Alcotest.(check bool)
        (Fmt.str "%s has positive benefit" c.A.cr_target)
        true (c.A.cr_benefit > 0.0))
    unlimited;
  I.set_comat_budget t 1;
  let tight = I.advise_comat t profile in
  Alcotest.(check bool) "row budget caps the packing" true
    (List.length tight < List.length unlimited
    || List.fold_left (fun a c -> a + c.A.cr_rows) 0 tight <= 1);
  I.set_comat_budget t 0;
  (* comat_auto applies what it advises *)
  let applied = I.comat_auto t in
  Alcotest.(check bool) "auto applied nothing (no observed traffic)" true
    (applied = [] && I.comat_list t = [])

(* --- regression: fallback stacks re-anchor at a copy (satellite 3) ----------- *)

let test_fallback_reanchors_at_copy () =
  (* versions=12 pushes the deep page chain past the flattener's hard
     ceiling: the far end runs on the layered fallback stack (the IVD011
     lint). A copy at an intermediate version must truncate that stack —
     the far view's base closure re-anchors at the copy table instead of
     walking every hop back to the physical root. *)
  let t, names = Scenarios.Wikimedia.build ~versions:12 () in
  let gen = I.genealogy t in
  let page_tv v =
    let sv =
      List.find (fun (sv : G.schema_version) -> sv.G.sv_name = v) gen.G.versions
    in
    List.assoc "page" sv.G.sv_tables
  in
  let last = names.(Array.length names - 1) in
  let far = G.tv_name (G.tv gen (page_tv last)) in
  Alcotest.(check bool) "deep chain fell back (IVD011)" true
    (List.mem_assoc far (I.flatten_fallbacks t));
  let closure name = Inverda.Viewcache.closure (I.genealogy t) name in
  let is_copy b = String.length b > 3 && String.sub b 0 3 = "cm!" in
  Alcotest.(check bool) "no copy in the stack yet" true
    (not (List.exists is_copy (closure far)));
  (* pick the deepest intermediate version whose page copy anchors the far
     stack *)
  let candidates =
    List.rev
      (List.filteri
         (fun i _ -> i > 0 && i < Array.length names - 1)
         (Array.to_list names))
  in
  let anchored =
    List.find_opt
      (fun v ->
        let tvid = page_tv v in
        if G.is_physical gen (G.tv gen tvid) then false
        else begin
          I.comat_add t (v ^ ".page");
          let cm = Inverda.Naming.comat_table ~id:tvid ~table:"page" in
          if List.mem cm (closure far) then true
          else begin
            I.comat_drop t (v ^ ".page");
            false
          end
        end)
      candidates
  in
  (match anchored with
  | None -> Alcotest.fail "no intermediate copy anchored the fallback stack"
  | Some v ->
    (* behavior: writes at the chain's root flow through the copy into the
       fallback views, stay exact, and dropping the copy changes nothing
       observable *)
    Scenarios.Wikimedia.load t ~version:names.(0) ~pages:4 ~links:4;
    I.comat_check t;
    let far_rows () =
      I.query_rows t (Fmt.str "SELECT * FROM \"%s.page\"" last)
      |> List.sort compare
    in
    let with_copy = far_rows () in
    Alcotest.(check bool) "far view has rows" true (with_copy <> []);
    I.comat_drop t (v ^ ".page");
    Alcotest.(check bool) "same answers without the copy" true
      (with_copy = far_rows ()))

(* --- copies survive evolution and migration ---------------------------------- *)

let test_copy_survives_evolution () =
  let t = Scenarios.Tasky.setup_full ~tasks:5 () in
  I.comat_add t "Do!.Todo";
  (* evolving a new version regenerates all delta code; the copy must come
     back registered and exact *)
  I.evolve t
    "CREATE SCHEMA VERSION Next FROM \"TasKy2\" WITH ADD COLUMN due AS 0 INTO Task;";
  Alcotest.(check int) "copy survived the evolution" 1
    (List.length (I.comat_list t));
  ignore
    (I.exec_sql t "INSERT INTO Next.Task (task, prio, due) VALUES ('n-1', 3, 9)");
  I.comat_check t;
  (* dropping the version the copy serves prunes the copy *)
  let t2 = Scenarios.Tasky.setup_full ~tasks:3 () in
  I.comat_add t2 "Do!.Todo";
  I.evolve t2 "DROP SCHEMA VERSION \"Do!\";";
  Alcotest.(check bool) "copy of the dropped version pruned" true
    (I.comat_list t2 = []);
  ignore (I.exec_sql t2 "INSERT INTO TasKy.Task (author, task, prio) VALUES ('Zoe', 'post', 1)");
  Alcotest.(check int) "engine still consistent" 1
    (I.query_int t2 "SELECT COUNT(*) FROM TasKy2.Task WHERE task = 'post'")

let test_copy_in_open_txn () =
  let t = Scenarios.Tasky.setup_full ~tasks:3 () in
  ignore (I.exec_sql t "BEGIN");
  (match I.comat_add t "TasKy2.Task" with
  | exception I.Inverda_error _ -> ()
  | () -> Alcotest.fail "comat_add accepted inside an open transaction");
  ignore (I.exec_sql t "ROLLBACK")

(* --- suite ------------------------------------------------------------------- *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "comat"
    [
      ( "basics",
        [
          tc "smoke" test_smoke;
          tc "add guards" test_add_guards;
          tc "open transaction refused" test_copy_in_open_txn;
        ] );
      ( "coherence",
        [
          tc "tasky all materializations" test_tasky_coherence;
          tc "wikimedia deep chain" test_wikimedia_coherence;
        ] );
      ( "regressions",
        [
          tc "no stale cache after maintenance" test_no_stale_cache_after_maintenance;
          tc "advisor zero profile" test_advisor_zero_profile;
          tc "advise_comat budget" test_advise_comat_budget;
          tc "fallback re-anchors at copy" test_fallback_reanchors_at_copy;
        ] );
      ( "lifecycle",
        [ tc "copy survives evolution and drop" test_copy_survives_evolution ] );
    ]
