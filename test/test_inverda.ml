(* End-to-end tests of InVerDa: the TasKy running example of the paper with
   co-existing schema versions, write propagation in both directions, and
   materialization changes that must be invisible to every version. *)

module I = Inverda.Api
module Value = Minidb.Value

let tasky_script =
  "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);"

let do_script =
  {|CREATE SCHEMA VERSION Do! FROM TasKy WITH
      SPLIT TABLE Task INTO Todo WITH prio = 1;
      DROP COLUMN prio FROM Todo DEFAULT 1;|}

let tasky2_script =
  {|CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
      DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
      RENAME COLUMN author IN Author TO name;|}

let setup_tasky () =
  let t = I.create () in
  I.evolve t tasky_script;
  List.iter
    (fun (author, task, prio) ->
      ignore
        (I.exec_sql t
           (Fmt.str
              "INSERT INTO TasKy.Task (author, task, prio) VALUES ('%s', '%s', %d)"
              author task prio)))
    [
      ("Ann", "Organize party", 3);
      ("Ben", "Learn for exam", 2);
      ("Ann", "Write paper", 1);
      ("Ben", "Clean room", 1);
    ];
  t

let setup_full () =
  let t = setup_tasky () in
  I.evolve t do_script;
  I.evolve t tasky2_script;
  t

let sorted rows = List.sort compare rows

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_rows msg expected actual =
  Alcotest.(check (list (list string)))
    msg (sorted expected)
    (sorted (List.map (List.map Value.to_string) actual))

(* reads every version must serve, used after each state change *)
let check_all_versions ?(extra = []) t =
  check_rows "TasKy.Task"
    ([
       [ "Ann"; "Organize party"; "3" ];
       [ "Ben"; "Learn for exam"; "2" ];
       [ "Ann"; "Write paper"; "1" ];
       [ "Ben"; "Clean room"; "1" ];
     ]
    @ extra)
    (I.query_rows t "SELECT author, task, prio FROM TasKy.Task");
  check_rows "Do!.Todo"
    ([ [ "Ann"; "Write paper" ]; [ "Ben"; "Clean room" ] ]
    @ List.filter_map
        (function
          | [ a; tk; "1" ] -> Some [ a; tk ]
          | _ -> None)
        extra)
    (I.query_rows t "SELECT author, task FROM Do!.Todo");
  check_rows "TasKy2.Task"
    ([
       [ "Organize party"; "3" ];
       [ "Learn for exam"; "2" ];
       [ "Write paper"; "1" ];
       [ "Clean room"; "1" ];
     ]
    @ List.map (function [ _; tk; p ] -> [ tk; p ] | _ -> assert false) extra)
    (I.query_rows t "SELECT task, prio FROM TasKy2.Task");
  check_rows "TasKy2.Author"
    (List.sort_uniq compare
       ([ [ "Ann" ]; [ "Ben" ] ]
       @ List.map (function [ a; _; _ ] -> [ a ] | _ -> assert false) extra))
    (I.query_rows t "SELECT name FROM TasKy2.Author")

let test_initial_version () =
  let t = setup_tasky () in
  Alcotest.(check int)
    "4 tasks" 4
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task");
  Alcotest.(check (list string)) "one version" [ "TasKy" ] (I.versions t)

let test_do_version () =
  let t = setup_tasky () in
  I.evolve t do_script;
  check_rows "urgent only"
    [ [ "Ann"; "Write paper" ]; [ "Ben"; "Clean room" ] ]
    (I.query_rows t "SELECT author, task FROM Do!.Todo");
  (* write through Do! : insert gets prio 1 in TasKy (the DROP COLUMN
     DEFAULT) *)
  ignore
    (I.exec_sql t "INSERT INTO Do!.Todo (author, task) VALUES ('Cleo', 'Ship it')");
  check_rows "visible in TasKy with prio 1"
    [ [ "Cleo"; "Ship it"; "1" ] ]
    (I.query_rows t
       "SELECT author, task, prio FROM TasKy.Task WHERE author = 'Cleo'");
  (* update through Do! *)
  ignore
    (I.exec_sql t
       "UPDATE Do!.Todo SET task = 'Ship it now' WHERE author = 'Cleo'");
  Alcotest.(check int)
    "updated in TasKy" 1
    (I.query_int t
       "SELECT COUNT(*) FROM TasKy.Task WHERE task = 'Ship it now'");
  (* delete through Do! *)
  ignore (I.exec_sql t "DELETE FROM Do!.Todo WHERE author = 'Cleo'");
  Alcotest.(check int)
    "gone from TasKy" 0
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task WHERE author = 'Cleo'")

let test_tasky2_version () =
  let t = setup_tasky () in
  I.evolve t tasky2_script;
  check_rows "normalized tasks"
    [
      [ "Organize party"; "3" ];
      [ "Learn for exam"; "2" ];
      [ "Write paper"; "1" ];
      [ "Clean room"; "1" ];
    ]
    (I.query_rows t "SELECT task, prio FROM TasKy2.Task");
  check_rows "authors deduplicated"
    [ [ "Ann" ]; [ "Ben" ] ]
    (I.query_rows t "SELECT name FROM TasKy2.Author");
  (* the foreign key joins back *)
  check_rows "join recovers the original"
    [
      [ "Ann"; "Organize party" ];
      [ "Ben"; "Learn for exam" ];
      [ "Ann"; "Write paper" ];
      [ "Ben"; "Clean room" ];
    ]
    (I.query_rows t
       "SELECT a.name, t.task FROM TasKy2.Task t JOIN TasKy2.Author a ON t.author = a.p")

let test_three_versions_coexist () =
  let t = setup_full () in
  check_all_versions t

let test_write_propagation_tasky () =
  let t = setup_full () in
  ignore
    (I.exec_sql t
       "INSERT INTO TasKy.Task (author, task, prio) VALUES ('Cleo', 'New thing', 1)");
  check_all_versions ~extra:[ [ "Cleo"; "New thing"; "1" ] ] t

let test_write_propagation_tasky2 () =
  let t = setup_full () in
  (* insert a task for the existing author Ann through TasKy2 *)
  let ann =
    I.query_int t "SELECT p FROM TasKy2.Author WHERE name = 'Ann'"
  in
  ignore
    (I.exec_sql t
       (Fmt.str
          "INSERT INTO TasKy2.Task (task, prio, author) VALUES ('Review paper', 1, %d)"
          ann));
  check_all_versions ~extra:[ [ "Ann"; "Review paper"; "1" ] ] t

let test_materialize_tasky2 () =
  let t = setup_full () in
  I.materialize t [ "TasKy2" ];
  check_all_versions t;
  (* writes still propagate everywhere after the migration *)
  ignore
    (I.exec_sql t
       "INSERT INTO TasKy.Task (author, task, prio) VALUES ('Cleo', 'New thing', 1)");
  check_all_versions ~extra:[ [ "Cleo"; "New thing"; "1" ] ] t

let test_materialize_do () =
  let t = setup_full () in
  I.materialize t [ "Do!" ];
  check_all_versions t;
  ignore
    (I.exec_sql t
       "INSERT INTO Do!.Todo (author, task) VALUES ('Cleo', 'Ship it')");
  check_all_versions ~extra:[ [ "Cleo"; "Ship it"; "1" ] ] t

let test_materialize_round_trip () =
  let t = setup_full () in
  I.materialize t [ "TasKy2" ];
  I.materialize t [ "Do!" ];
  I.materialize t [ "TasKy" ];
  check_all_versions t

let test_all_materializations_table2 () =
  (* Table 2 of the paper: the TasKy genealogy admits exactly 5 valid
     materialization schemas *)
  let t = setup_full () in
  let mats = Inverda.Genealogy.enumerate_materializations (I.genealogy t) in
  Alcotest.(check int) "five materializations" 5 (List.length mats);
  (* every one of them serves all versions identically *)
  List.iter
    (fun mat ->
      I.set_materialization t mat;
      check_all_versions t)
    mats

let test_duplicate_key_rejected () =
  let t = setup_full () in
  ignore
    (I.exec_sql t
       "INSERT INTO TasKy.Task (p, author, task, prio) VALUES (500, 'Zoe', 'explicit key', 1)");
  (* a second insert with the same explicit key must raise, not silently
     upsert over Zoe's row *)
  (match
     I.exec_sql t
       "INSERT INTO TasKy.Task (p, author, task, prio) VALUES (500, 'Sam', 'stolen key', 2)"
   with
  | exception Minidb.Table.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate key through a version view must be rejected");
  Alcotest.(check int)
    "exactly one row under key 500" 1
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task WHERE p = 500");
  check_rows "payload untouched (atomic rollback)"
    [ [ "Zoe"; "explicit key"; "1" ] ]
    (I.query_rows t
       "SELECT author, task, prio FROM TasKy.Task WHERE p = 500");
  (* the key is global across versions: Zoe's prio-1 row lives in the Do!
     partition too, so reusing its key there must also be rejected *)
  (match
     I.exec_sql t
       "INSERT INTO Do!.Todo (p, author, task) VALUES (500, 'Moe', 'dup via Do')"
   with
  | exception Minidb.Table.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate key via a sibling version must be rejected");
  (* inserts without an explicit key still draw fresh identifiers *)
  ignore
    (I.exec_sql t
       "INSERT INTO TasKy.Task (author, task, prio) VALUES ('Kim', 'fresh key', 2)");
  Alcotest.(check int)
    "fresh-key insert lands" 1
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task WHERE author = 'Kim'")

let test_cache_agreement_all_materializations () =
  (* the cross-statement view cache must be semantically invisible: for every
     valid materialization schema of the TasKy genealogy, a cached and an
     uncached instance fed identical writes serve byte-identical results
     (compared *unsorted*, so even row order must agree) *)
  let t_on = setup_full () in
  let t_off = setup_full () in
  I.set_cache t_off false;
  let probes =
    [
      "SELECT * FROM TasKy.Task";
      "SELECT * FROM Do!.Todo";
      "SELECT * FROM TasKy2.Task";
      "SELECT * FROM TasKy2.Author";
      "SELECT COUNT(*) FROM TasKy.Task WHERE prio = 1";
    ]
  in
  let agree msg =
    List.iter
      (fun q ->
        (* prime the cache so the comparison read is served from it *)
        ignore (I.query_rows t_on q);
        Alcotest.(check (list (list string)))
          (msg ^ ": " ^ q)
          (List.map (List.map Value.to_string) (I.query_rows t_off q))
          (List.map (List.map Value.to_string) (I.query_rows t_on q)))
      probes
  in
  let both sql =
    ignore (I.exec_sql t_on sql);
    ignore (I.exec_sql t_off sql)
  in
  let mats = Inverda.Genealogy.enumerate_materializations (I.genealogy t_on) in
  Alcotest.(check int) "five materializations" 5 (List.length mats);
  List.iteri
    (fun i mat ->
      I.set_materialization t_on mat;
      I.set_materialization t_off mat;
      agree (Fmt.str "mat %d" i);
      both
        (Fmt.str
           "INSERT INTO Do!.Todo (author, task) VALUES ('Gil', 'todo %d')" i);
      both
        (Fmt.str
           "UPDATE TasKy.Task SET prio = 2 WHERE task = 'todo %d'" i);
      agree (Fmt.str "mat %d after writes" i))
    mats;
  let hits, _ = I.cache_stats t_on in
  Alcotest.(check bool) "cache actually served hits" true (hits > 0)

let test_update_through_tasky2 () =
  let t = setup_full () in
  (* renaming an author in TasKy2 renames it for all tasks in TasKy *)
  ignore (I.exec_sql t "UPDATE TasKy2.Author SET name = 'Annette' WHERE name = 'Ann'");
  Alcotest.(check int)
    "both tasks renamed" 2
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task WHERE author = 'Annette'")

let test_delete_through_do () =
  let t = setup_full () in
  ignore (I.exec_sql t "DELETE FROM Do!.Todo WHERE task = 'Clean room'");
  Alcotest.(check int)
    "gone in TasKy" 0
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task WHERE task = 'Clean room'");
  Alcotest.(check int)
    "gone in TasKy2" 0
    (I.query_int t "SELECT COUNT(*) FROM TasKy2.Task WHERE task = 'Clean room'")

let test_drop_schema_version () =
  let t = setup_full () in
  I.exec_bidel t (Bidel.Ast.Drop_schema_version "Do!");
  Alcotest.(check (list string))
    "two versions left" [ "TasKy"; "TasKy2" ] (I.versions t);
  (* remaining versions still work *)
  Alcotest.(check int) "tasky works" 4
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task")

let test_describe () =
  let t = setup_full () in
  let d = I.describe t in
  Alcotest.(check bool) "mentions TasKy2" true
    (Astring.String.is_infix ~affix:"TasKy2" d)

(* --- genealogy, advisor, errors, extensions ---------------------------------- *)

let test_validity_conditions () =
  (* conditions (55)/(56) of the paper *)
  let t = setup_full () in
  let gen = I.genealogy t in
  let smos = Inverda.Genealogy.all_smos gen in
  let creates =
    List.filter_map
      (fun (si : Inverda.Genealogy.smo_instance) ->
        match si.Inverda.Genealogy.si_smo with
        | Bidel.Ast.Create_table _ -> Some si.Inverda.Genealogy.si_id
        | _ -> None)
      smos
  in
  let find name =
    (List.find
       (fun (si : Inverda.Genealogy.smo_instance) ->
         Bidel.Ast.smo_name si.Inverda.Genealogy.si_smo = name)
       smos)
      .Inverda.Genealogy.si_id
  in
  let split = find "SPLIT" and dropcol = find "DROP COLUMN" in
  let decompose = find "DECOMPOSE" in
  (* (55): DROP COLUMN's source (Todo-0) requires SPLIT materialized *)
  Alcotest.(check bool) "55 violated" false
    (Inverda.Genealogy.valid_materialization gen (creates @ [ dropcol ]));
  Alcotest.(check bool) "55 satisfied" true
    (Inverda.Genealogy.valid_materialization gen (creates @ [ split; dropcol ]));
  (* (56): SPLIT and DECOMPOSE share the source Task-0 *)
  Alcotest.(check bool) "56 violated" false
    (Inverda.Genealogy.valid_materialization gen (creates @ [ split; decompose ]));
  (* CREATE TABLE SMOs are always materialized *)
  Alcotest.(check bool) "create-table SMOs mandatory" false
    (Inverda.Genealogy.valid_materialization gen [ split ])

let test_invalid_materialization_rejected () =
  let t = setup_full () in
  let gen = I.genealogy t in
  let split =
    (List.find
       (fun (si : Inverda.Genealogy.smo_instance) ->
         Bidel.Ast.smo_name si.Inverda.Genealogy.si_smo = "SPLIT")
       (Inverda.Genealogy.all_smos gen))
      .Inverda.Genealogy.si_id
  in
  match I.set_materialization t [ split ] with
  | exception Inverda.Migration.Migration_error _ -> ()
  | () -> Alcotest.fail "invalid materialization accepted"

let test_unknown_version_errors () =
  let t = setup_full () in
  (match I.materialize t [ "NoSuch" ] with
  | exception Inverda.Migration.Migration_error msg ->
    (* the full target string must appear in the report *)
    Alcotest.(check bool) "target named" true (contains msg "NoSuch")
  | () -> Alcotest.fail "unknown version accepted");
  match I.evolve t "CREATE SCHEMA VERSION X FROM NoSuch WITH CREATE TABLE t(a);" with
  | exception Inverda.Genealogy.Catalog_error _ -> ()
  | () -> Alcotest.fail "unknown parent accepted"

let test_duplicate_version_rejected () =
  let t = setup_full () in
  match I.evolve t "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE t(a);" with
  | exception Inverda.Genealogy.Catalog_error _ -> ()
  | () -> Alcotest.fail "duplicate version accepted"

let test_smo_on_unknown_table_rejected () =
  let t = setup_full () in
  match
    I.evolve t "CREATE SCHEMA VERSION X FROM TasKy WITH DROP TABLE nosuch;"
  with
  | exception Inverda.Genealogy.Catalog_error _ -> ()
  | () -> Alcotest.fail "SMO on unknown table accepted"

let test_untouched_tables_carry_over () =
  (* tables not consumed by any SMO are shared between versions *)
  let t = I.create () in
  I.evolve t "CREATE SCHEMA VERSION v1 WITH CREATE TABLE a(x); CREATE TABLE b(y);";
  I.evolve t "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN z AS 0 INTO a;";
  Alcotest.(check (list string)) "v2 keeps b" [ "b"; "a" ]
    (List.sort compare (I.version_tables t "v2") |> List.rev);
  ignore (I.exec_sql t "INSERT INTO v1.b (y) VALUES (7)");
  Alcotest.(check int) "b shared" 7 (I.query_int t "SELECT y FROM v2.b")

let test_deep_chain_writes () =
  (* 12 ADD COLUMN hops: writes propagate the whole chain in both directions *)
  let t = I.create () in
  I.evolve t "CREATE SCHEMA VERSION v0 WITH CREATE TABLE r(a);";
  for i = 1 to 12 do
    ignore
      (I.evolve t
         (Fmt.str "CREATE SCHEMA VERSION v%d FROM v%d WITH ADD COLUMN c%d AS %d INTO r;"
            i (i - 1) i i))
  done;
  ignore (I.exec_sql t "INSERT INTO v12.r (a, c12) VALUES (1, 99)");
  Alcotest.(check int) "visible at v0" 1 (I.query_int t "SELECT COUNT(*) FROM v0.r");
  ignore (I.exec_sql t "INSERT INTO v0.r (a) VALUES (2)");
  Alcotest.(check int) "defaults applied along the chain" 7
    (I.query_int t "SELECT c7 FROM v12.r WHERE a = 2");
  Alcotest.(check int) "explicit value preserved" 99
    (I.query_int t "SELECT c12 FROM v12.r WHERE a = 1");
  (* migrate the whole chain forward and back *)
  I.materialize t [ "v12" ];
  Alcotest.(check int) "v0 after migration" 2
    (I.query_int t "SELECT COUNT(*) FROM v0.r");
  I.materialize t [ "v0" ];
  Alcotest.(check int) "v12 after migrating back" 2
    (I.query_int t "SELECT COUNT(*) FROM v12.r")

let test_advisor () =
  let t = setup_full () in
  let gen = I.genealogy t in
  let pick profile =
    match Inverda.Advisor.advise gen profile with
    | Some r -> r.Inverda.Advisor.materialization
    | None -> Alcotest.fail "no recommendation"
  in
  (* pure TasKy2 load: materialize the whole decompose+rename branch *)
  let m = pick [ ("TasKy2", 1.0) ] in
  Alcotest.(check int) "TasKy2 branch fully materialized" 0
    (Inverda.Advisor.cost gen m [ ("TasKy2", 1.0) ] |> int_of_float);
  (* pure TasKy load: the initial materialization is optimal *)
  let m0 = pick [ ("TasKy", 1.0) ] in
  Alcotest.(check (float 0.001)) "TasKy local" 0.0
    (Inverda.Advisor.cost gen m0 [ ("TasKy", 1.0) ]);
  (* migrating to the recommendation keeps all versions intact *)
  Alcotest.(check bool) "migrates" true
    (Inverda.Advisor.advise_and_migrate (I.database t) gen [ ("TasKy2", 1.0) ]);
  check_all_versions t

let test_bidel_via_sql_interface () =
  (* MATERIALIZE parsed from BiDEL text, with table-version targets *)
  let t = setup_full () in
  I.evolve t "MATERIALIZE 'TasKy2.Task', 'TasKy2.Author';";
  check_all_versions t

let test_drop_version_preserves_connections () =
  (* dropping the middle version keeps evolutions between the remaining ones *)
  let t = I.create () in
  I.evolve t "CREATE SCHEMA VERSION v1 WITH CREATE TABLE r(a);";
  I.evolve t "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS 1 INTO r;";
  I.evolve t "CREATE SCHEMA VERSION v3 FROM v2 WITH ADD COLUMN c AS 2 INTO r;";
  ignore (I.exec_sql t "INSERT INTO v1.r (a) VALUES (5)");
  I.exec_bidel t (Bidel.Ast.Drop_schema_version "v2");
  Alcotest.(check (list string)) "v2 gone" [ "v1"; "v3" ] (I.versions t);
  Alcotest.(check int) "v3 still served" 1
    (I.query_int t "SELECT COUNT(*) FROM v3.r");
  I.materialize t [ "v3" ];
  Alcotest.(check int) "v1 still served after migration" 5
    (I.query_int t "SELECT a FROM v1.r")

let test_condition_decompose_end_to_end () =
  (* the B.4 machinery end to end: pair table, rule-166 re-joining, the
     omega-pad guard on IDn, and the IDn fold-back at virtualisation *)
  let t = I.create () in
  I.evolve t "CREATE SCHEMA VERSION v1 WITH CREATE TABLE booking(guest, room);";
  ignore
    (I.exec_sql t
       "INSERT INTO v1.booking (guest, room) VALUES ('Ann', 101), ('Ben', 102), ('Cleo', 101)");
  I.evolve t
    "CREATE SCHEMA VERSION v2 FROM v1 WITH      DECOMPOSE TABLE booking INTO guest(guest), room(room) ON guest <> 'nobody';";
  check_rows "guests" [ [ "Ann" ]; [ "Ben" ]; [ "Cleo" ] ]
    (I.query_rows t "SELECT guest FROM v2.guest");
  check_rows "rooms deduplicated" [ [ "101" ]; [ "102" ] ]
    (I.query_rows t "SELECT room FROM v2.room");
  (* renaming through v2 reaches v1 *)
  ignore (I.exec_sql t "UPDATE v2.guest SET guest = 'Annette' WHERE guest = 'Ann'");
  Alcotest.(check int) "renamed in v1" 1
    (I.query_int t "SELECT COUNT(*) FROM v1.booking WHERE guest = 'Annette'");
  I.materialize t [ "v2" ];
  check_rows "v1 after migration"
    [ [ "Annette"; "101" ]; [ "Ben"; "102" ]; [ "Cleo"; "101" ] ]
    (I.query_rows t "SELECT guest, room FROM v1.booking");
  (* a lone guest inserted while materialized re-joins with every matching
     partner (rule 166) and must not also resurface omega-padded *)
  ignore (I.exec_sql t "INSERT INTO v2.guest (guest) VALUES ('Eve')");
  check_rows "rule 166 re-joins, no padded duplicate"
    [ [ "Eve"; "101" ]; [ "Eve"; "102" ] ]
    (I.query_rows t "SELECT guest, room FROM v1.booking WHERE guest = 'Eve'");
  (* migrating back folds IDn into the persistent pair table: no duplicates *)
  I.materialize t [ "v1" ];
  check_rows "guest view stays deduplicated"
    [ [ "Annette" ]; [ "Ben" ]; [ "Cleo" ]; [ "Eve" ] ]
    (I.query_rows t "SELECT guest FROM v2.guest")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "inverda"
    [
      ( "evolution",
        [
          tc "initial version" test_initial_version;
          tc "Do! (split + drop column)" test_do_version;
          tc "TasKy2 (fk decompose + rename)" test_tasky2_version;
          tc "three versions co-exist" test_three_versions_coexist;
        ] );
      ( "write propagation",
        [
          tc "through TasKy" test_write_propagation_tasky;
          tc "through TasKy2" test_write_propagation_tasky2;
          tc "duplicate key rejected" test_duplicate_key_rejected;
          tc "update through TasKy2" test_update_through_tasky2;
          tc "delete through Do!" test_delete_through_do;
        ] );
      ( "migration",
        [
          tc "materialize TasKy2" test_materialize_tasky2;
          tc "materialize Do!" test_materialize_do;
          tc "round trip" test_materialize_round_trip;
          tc "all 5 materializations (Table 2)" test_all_materializations_table2;
          tc "cache agreement across materializations"
            test_cache_agreement_all_materializations;
        ] );
      ( "catalog",
        [
          tc "drop schema version" test_drop_schema_version;
          tc "describe" test_describe;
          tc "validity conditions (55)/(56)" test_validity_conditions;
          tc "invalid materialization rejected" test_invalid_materialization_rejected;
          tc "unknown version errors" test_unknown_version_errors;
          tc "duplicate version rejected" test_duplicate_version_rejected;
          tc "SMO on unknown table rejected" test_smo_on_unknown_table_rejected;
          tc "untouched tables carry over" test_untouched_tables_carry_over;
          tc "drop version keeps connections" test_drop_version_preserves_connections;
        ] );
      ( "extensions",
        [
          tc "deep evolution chain" test_deep_chain_writes;
          tc "advisor" test_advisor;
          tc "MATERIALIZE with table targets" test_bidel_via_sql_interface;
          tc "condition decompose end to end" test_condition_decompose_end_to_end;
        ] );
    ]
