(* Batch-vs-row executor equivalence properties.

   The compiled columnar executor (lib/minidb/batch.ml + the fused
   pipelines in exec.ml) must be observationally equivalent to the
   row-at-a-time interpreter: same rows, same Value comparison semantics,
   same NULL ordering and same raise/no-raise behavior — over columns
   holding mixed types and NULLs, which exercise the [C_value] fallback
   column representation next to the typed ones. *)

module Engine = Minidb.Engine
module Db = Minidb.Database

(* Run [sql] under the chosen executor. Error payloads are normalized
   away: the two executors may phrase a type error differently (flipped
   operands on the probe side of a join, say), but they must agree on
   whether the query raises at all. *)
let run ?(sorted = true) db enabled sql =
  Db.set_batch db enabled;
  match Engine.query_rows db sql with
  | rows -> Ok (if sorted then List.sort compare rows else rows)
  | exception _ -> Error ()

let agree ?sorted db sql = run ?sorted db true sql = run ?sorted db false sql

let fresh_table cells =
  let db = Engine.create () in
  ignore
    (Engine.exec db "CREATE TABLE t (p INTEGER PRIMARY KEY, a INTEGER, b TEXT)");
  List.iteri
    (fun i (a, b) ->
      ignore
        (Engine.execf db "INSERT INTO t (p, a, b) VALUES (%d, %s, %s)" i a b))
    cells;
  db

(* SQL literals drawn from every Value constructor plus NULL; a column
   filled from this generator compresses to the mixed-type [C_value]
   representation, not a typed vector. *)
let cell_gen =
  QCheck.Gen.(
    frequency
      [
        (2, return "NULL");
        (3, map string_of_int (int_range (-40) 40));
        (2, map (fun i -> Fmt.str "%.2f" (float_of_int i /. 4.0)) (int_range (-80) 80));
        (2, oneofl [ "'a'"; "'b'"; "'cd'"; "''" ]);
        (1, oneofl [ "TRUE"; "FALSE" ]);
      ])

(* Homogeneous integers with NULLs: the typed [C_int] column + null mask. *)
let int_cell_gen =
  QCheck.Gen.(
    frequency
      [ (1, return "NULL"); (4, map string_of_int (int_range (-10) 10)) ])

let rows_arb cell =
  QCheck.make
    ~print:(fun cs ->
      String.concat "; " (List.map (fun (a, b) -> a ^ "," ^ b) cs))
    QCheck.Gen.(list_size (0 -- 25) (pair cell cell_gen))

let qsuite =
  let open QCheck in
  let scan_projection =
    Test.make ~name:"scan/projection/distinct agree on mixed columns"
      ~count:60 (rows_arb cell_gen) (fun cells ->
        let db = fresh_table cells in
        List.for_all (agree db)
          [
            "SELECT * FROM t";
            "SELECT b, a FROM t";
            "SELECT DISTINCT b FROM t";
            "SELECT COUNT(*), COUNT(a), COUNT(b) FROM t";
          ])
  in
  let null_ordering =
    (* exact (unsorted) comparison: ORDER BY must place NULLs and compare
       mixed Values identically under both executors; p breaks ties so the
       expected order is total *)
    Test.make ~name:"ORDER BY places NULLs and mixed values identically"
      ~count:60 (rows_arb cell_gen) (fun cells ->
        let db = fresh_table cells in
        List.for_all
          (agree ~sorted:false db)
          [
            "SELECT a, p FROM t ORDER BY a, p";
            "SELECT a, p FROM t ORDER BY a DESC, p DESC";
          ])
  in
  let filters_aggregates =
    Test.make ~name:"filters and aggregates agree on INT columns with NULLs"
      ~count:60
      (pair (rows_arb int_cell_gen) (int_bound 10))
      (fun (cells, k) ->
        let db = fresh_table cells in
        List.for_all (agree db)
          [
            Fmt.str "SELECT p, a FROM t WHERE a >= %d" (k - 5);
            Fmt.str "SELECT p FROM t WHERE a >= %d AND a <= %d" (-k) k;
            "SELECT p FROM t WHERE a IS NULL";
            "SELECT p, b FROM t WHERE a IS NOT NULL";
            "SELECT COUNT(a), MIN(a), MAX(a), SUM(a) FROM t";
          ])
  in
  let joins =
    (* NULL keys never join; the batch hash join must agree with the
       row-path nested probe on inner and left-outer shapes alike *)
    Test.make ~name:"self-joins agree (NULL keys never match)" ~count:40
      (rows_arb int_cell_gen) (fun cells ->
        let db = fresh_table cells in
        List.for_all (agree db)
          [
            "SELECT x.p, y.p FROM t x JOIN t y ON x.a = y.a";
            "SELECT x.p, y.b FROM t x LEFT JOIN t y ON x.a = y.a";
            "SELECT x.p FROM t x JOIN t y ON x.a = y.a WHERE x.p < y.p";
          ])
  in
  let error_alignment =
    (* a comparison over a fully mixed column may legitimately raise a
       type error — but then it must raise under both executors, and
       return the same rows when it does not *)
    Test.make ~name:"raise/no-raise aligns on mixed-type comparisons"
      ~count:60 (rows_arb cell_gen) (fun cells ->
        let db = fresh_table cells in
        List.for_all (agree db)
          [
            "SELECT p FROM t WHERE a > 5";
            "SELECT p FROM t WHERE a = 'a'";
            "SELECT x.p, y.p FROM t x JOIN t y ON x.a = y.b";
          ])
  in
  List.map QCheck_alcotest.to_alcotest
    [ scan_projection; null_ordering; filters_aggregates; joins; error_alignment ]

let () = Alcotest.run "batch" [ ("batch-vs-row", qsuite) ]
