(* Interactive InVerDa shell: BiDEL evolution statements, the MATERIALIZE
   migration command, and plain SQL against any "version.table" view, all in
   one REPL.

     dune exec bin/inverda_cli.exe            # interactive
     dune exec bin/inverda_cli.exe -- --demo  # pre-load the TasKy example
     echo "script" | dune exec bin/inverda_cli.exe

   Statements end with ';'. Meta commands: .help .catalog .versions .smos
   .quit *)

module I = Inverda.Api

let help_text =
  {|Statements (end with ';'):
  CREATE SCHEMA VERSION <v> [FROM <v0>] WITH <smo>; <smo>; ...
      SMOs: CREATE TABLE t(a,b) | DROP TABLE t | RENAME TABLE t INTO u
            ADD COLUMN c AS <expr> INTO t | DROP COLUMN c FROM t DEFAULT <expr>
            RENAME COLUMN c IN t TO d
            DECOMPOSE TABLE t INTO r(a,..)[, s(b,..)] ON PK|FOREIGN KEY fk|<cond>
            [OUTER] JOIN TABLE r, s INTO t ON PK|FOREIGN KEY fk|<cond>
            SPLIT TABLE t INTO r WITH <cond> [, s WITH <cond>]
            MERGE TABLE r (<cond>), s (<cond>) INTO t
  DROP SCHEMA VERSION <v>;
  MATERIALIZE '<version>' | '<version>.<table>', ...;
  any SQL: SELECT/INSERT/UPDATE/DELETE ... FROM <version>.<table>
  SELECT ... AS OF <changeset>;   (time travel; needs --dir)
Meta commands: .help  .catalog  .versions  .smos  .stats  .metrics
               .trace [n]  .traces [n]  .profile <stmt>  .explain <sql>
               .author <who> [why...]  .history [n]  .checkpoint  .quit|}

let is_bidel sql =
  let up = String.uppercase_ascii (String.trim sql) in
  let starts p =
    String.length up >= String.length p && String.sub up 0 (String.length p) = p
  in
  starts "CREATE SCHEMA" || starts "DROP SCHEMA" || starts "MATERIALIZE"

let print_relation (rel : Minidb.Exec.relation) =
  Fmt.pr "%s@." (String.concat " | " rel.Minidb.Exec.rel_cols);
  List.iter
    (fun row ->
      Fmt.pr "%s@."
        (String.concat " | " (Array.to_list (Array.map Minidb.Value.to_string row))))
    rel.Minidb.Exec.rel_rows;
  Fmt.pr "(%d rows)@." (List.length rel.Minidb.Exec.rel_rows)

let execute t input =
  try
    if is_bidel input then begin
      I.evolve t input;
      Fmt.pr "ok@."
    end
    else
      match Inverda.Changeset.split_as_of input with
      | sql, Some changeset -> print_relation (I.as_of t ~changeset sql)
      | _, None -> (
        match Minidb.Engine.exec (I.database t) input with
        | Minidb.Exec.Rows rel -> print_relation rel
        | Minidb.Exec.Affected n -> Fmt.pr "%d rows affected@." n
        | Minidb.Exec.Done -> Fmt.pr "ok@.")
  with
  | Minidb.Sql_lexer.Cursor.Parse_error msg -> Fmt.pr "parse error: %s@." msg
  | Minidb.Sql_lexer.Lex_error (msg, _) -> Fmt.pr "lex error: %s@." msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Inverda.Migration.Migration_error msg ->
    Fmt.pr "error: %s@." msg
  | Analysis.Diagnostic.Rejected ds ->
    Fmt.pr "rejected by the static analyzer:@.";
    Analysis.Diagnostic.report Fmt.stdout ds
  | Minidb.Table.Constraint_violation msg -> Fmt.pr "constraint violation: %s@." msg
  | Minidb.Value.Type_error msg -> Fmt.pr "type error: %s@." msg
  | Bidel.Smo_semantics.Semantics_error msg -> Fmt.pr "SMO error: %s@." msg

let print_record (r : Minidb.Wal.record) =
  let payload =
    String.map (fun c -> if c = '\n' then ' ' else c) r.Minidb.Wal.payload
  in
  let tag = I.record_tag r in
  let audit =
    match I.record_audit r with
    | None -> ""
    | Some (who, why) ->
      Fmt.str "  -- by %s%s"
        (if who = "" then "?" else who)
        (if why = "" then "" else Fmt.str " (%s)" why)
  in
  Fmt.pr "%6d  %-6s %-22s %s%s@." r.Minidb.Wal.lsn r.Minidb.Wal.kind
    (if tag = "" then "-" else tag)
    payload audit

let print_history t limit =
  try
    let records = I.history t in
    let records =
      match limit with
      | Some n when n >= 0 && n < List.length records ->
        (* the newest [n] *)
        List.filteri (fun i _ -> i >= List.length records - n) records
      | _ -> records
    in
    List.iter print_record records
  with I.Inverda_error msg -> Fmt.pr "error: %s@." msg

let meta t line =
  let line = String.trim line in
  let arg_of prefix =
    if
      String.length line > String.length prefix
      && String.sub line 0 (String.length prefix) = prefix
    then Some (String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)))
    else None
  in
  match arg_of ".history" with
  | Some n -> print_history t (int_of_string_opt n)
  | None ->
  match arg_of ".explain" with
  | Some sql -> (
    try Fmt.pr "%s%!" (I.explain t sql)
    with exn -> Fmt.pr "error: %s@." (Printexc.to_string exn))
  | None ->
  match arg_of ".profile" with
  | Some sql -> (
    try Fmt.pr "%s%!" (I.profile t sql)
    with exn -> Fmt.pr "error: %s@." (Printexc.to_string exn))
  | None ->
  match arg_of ".author" with
  | Some rest -> (
    let who, why =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some i ->
        ( String.sub rest 0 i,
          String.trim
            (String.sub rest (i + 1) (String.length rest - i - 1)) )
    in
    try
      I.set_author t ~who ~why;
      if who = "" && why = "" then Fmt.pr "audit annotation cleared@."
      else
        Fmt.pr "changesets now stamped: by %s%s@." who
          (if why = "" then "" else Fmt.str " (%s)" why)
    with I.Inverda_error msg -> Fmt.pr "error: %s@." msg)
  | None ->
  let print_trace limit =
    List.iter
      (fun sp -> print_endline (Inverda.Telemetry.span_json sp))
      (I.recent_spans ~limit t)
  in
  let print_traces limit =
    List.iter
      (fun tr -> Fmt.pr "%s%!" (Inverda.Telemetry.trace_tree_text tr))
      (I.recent_traces ~limit t)
  in
  (* [.traces] must be tried before [.trace]: [arg_of] is a prefix match *)
  match arg_of ".traces" with
  | Some n -> print_traces (Option.value ~default:5 (int_of_string_opt n))
  | None ->
  match arg_of ".trace" with
  | Some n -> print_trace (Option.value ~default:20 (int_of_string_opt n))
  | None ->
  match line with
  | ".help" -> Fmt.pr "%s@." help_text
  | ".catalog" -> Fmt.pr "%s@." (I.describe t)
  | ".stats" -> Fmt.pr "%s%!" (I.stats_text t)
  | ".metrics" -> Fmt.pr "%s%!" (I.metrics_text t)
  | ".trace" -> print_trace 20
  | ".traces" -> print_traces 5
  | ".author" -> (
    try
      I.set_author t ~who:"" ~why:"";
      Fmt.pr "audit annotation cleared@."
    with I.Inverda_error msg -> Fmt.pr "error: %s@." msg)
  | ".history" -> print_history t None
  | ".checkpoint" -> (
    try
      I.checkpoint t;
      Fmt.pr "checkpoint written at changeset %d@." (I.current_changeset t)
    with I.Inverda_error msg -> Fmt.pr "error: %s@." msg)
  | ".versions" ->
    List.iter
      (fun v ->
        Fmt.pr "%s: %s@." v (String.concat ", " (I.version_tables t v)))
      (I.versions t)
  | ".smos" ->
    List.iter
      (fun (si : Inverda.Genealogy.smo_instance) ->
        Fmt.pr "#%d %s (%s)@." si.Inverda.Genealogy.si_id
          (Bidel.Printer.smo_to_string si.Inverda.Genealogy.si_smo)
          (if si.Inverda.Genealogy.si_materialized then "materialized"
           else "virtualized"))
      (Inverda.Genealogy.all_smos (I.genealogy t))
  | ".quit" | ".exit" -> exit 0
  | other -> Fmt.pr "unknown meta command %s (try .help)@." other

let repl t =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    Fmt.pr "InVerDa shell — co-existing schema versions (type .help)@.";
    Fmt.pr "inverda> %!"
  end;
  let buf = Buffer.create 256 in
  try
    while true do
      let line = input_line stdin in
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[0] = '.' && Buffer.length buf = 0
      then meta t trimmed
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        (* a statement ends when the buffered input ends with ';' *)
        let s = String.trim (Buffer.contents buf) in
        if String.length s > 0 && s.[String.length s - 1] = ';' then begin
          Buffer.clear buf;
          execute t s
        end
      end;
      if interactive then Fmt.pr "inverda> %!"
    done
  with End_of_file ->
    let rest = String.trim (Buffer.contents buf) in
    if rest <> "" then execute t rest

let run demo no_cache no_flatten no_batch dir =
  let t =
    match dir with
    | Some dir when Sys.file_exists (Minidb.Wal.log_file dir) ->
      (* an existing history: recover it (repairing a torn tail) and keep
         appending where the last session stopped *)
      let t = I.recover dir in
      Fmt.pr "recovered %s: %d schema versions, changeset position %d@." dir
        (List.length (I.versions t))
        (I.current_changeset t);
      if demo then Fmt.pr "(--demo ignored: %s already holds a history)@." dir;
      t
    | _ ->
      let t = I.create () in
      (match dir with Some dir -> I.attach_wal t dir | None -> ());
      if demo then begin
        I.evolve t Scenarios.Tasky.bidel_initial;
        Scenarios.Tasky.load_tasks t 20;
        I.evolve t Scenarios.Tasky.bidel_do;
        I.evolve t Scenarios.Tasky.bidel_tasky2;
        Fmt.pr "loaded the TasKy demo: versions %s@."
          (String.concat ", " (I.versions t))
      end;
      t
  in
  if no_cache then I.set_cache t false;
  if no_flatten then I.set_flatten t false;
  if no_batch then I.set_batch t false;
  repl t;
  0

(* --- the lint command ------------------------------------------------------- *)

let read_script path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_text path In_channel.input_all

(* Replay the script on a scratch instance and collect the deeper layers'
   diagnostics: rule-set safety for every instantiated SMO, the typechecked
   delta code of the final state, and a warning for every relation whose
   flattening fell back to the layered view stack. *)
let deep_diagnostics ~unused src =
  let t = I.create ~strict:false () in
  match I.evolve t src with
  | () ->
    let fallbacks =
      List.map
        (fun (rel, why) ->
          Analysis.Diagnostic.warning "IVD011"
            "delta code for %s not flattened (layered fallback): %s" rel why)
        (I.flatten_fallbacks t)
    in
    I.rule_diagnostics ~unused t @ I.delta_diagnostics t @ fallbacks
  | exception e ->
    [
      Analysis.Diagnostic.error "IVD000" "script replay failed: %s"
        (match e with
        | Inverda.Genealogy.Catalog_error m
        | Inverda.Migration.Migration_error m
        | Minidb.Database.Engine_error m
        | Minidb.Exec.Exec_error m
        | Bidel.Smo_semantics.Semantics_error m ->
          m
        | e -> Printexc.to_string e);
    ]

let lint file json shallow deny_warnings unused =
  match read_script file with
  | exception Sys_error msg ->
    Fmt.epr "%s@." msg;
    2
  | src ->
    let script = Analysis.lint_source src in
    (* replaying an erroneous script would only duplicate its findings *)
    let deep =
      if shallow || Analysis.Diagnostic.has_errors script then []
      else deep_diagnostics ~unused src
    in
    let all = script @ deep in
    if json then print_endline (Analysis.Diagnostic.list_to_json all)
    else begin
      Analysis.Diagnostic.report Fmt.stdout all;
      if all = [] then Fmt.pr "no diagnostics@."
    end;
    if Analysis.Diagnostic.has_errors all || (deny_warnings && all <> []) then 1
    else 0

(* --- the materialize command ------------------------------------------------ *)

let load_demo t =
  I.evolve t Scenarios.Tasky.bidel_initial;
  Scenarios.Tasky.load_tasks t 20;
  I.evolve t Scenarios.Tasky.bidel_do;
  I.evolve t Scenarios.Tasky.bidel_tasky2

let smo_label t id =
  let si = Inverda.Genealogy.smo (I.genealogy t) id in
  Fmt.str "#%d %s" id
    (Bidel.Printer.smo_to_string si.Inverda.Genealogy.si_smo)

let materialize_run demo script dry_run targets =
  try
    let t = I.create () in
    if demo then load_demo t;
    (match script with Some path -> I.evolve t (read_script path) | None -> ());
    let to_virtualize, to_materialize = I.migration_plan t targets in
    let print_plan () =
      Fmt.pr "flip plan for MATERIALIZE %s:@."
        (String.concat ", " (List.map (Fmt.str "'%s'") targets));
      if to_virtualize = [] && to_materialize = [] then
        Fmt.pr "  nothing to do (already at the requested materialization)@.";
      List.iter
        (fun id -> Fmt.pr "  virtualize   %s@." (smo_label t id))
        to_virtualize;
      List.iter
        (fun id -> Fmt.pr "  materialize  %s@." (smo_label t id))
        to_materialize
    in
    print_plan ();
    if dry_run then 0
    else begin
      I.materialize t targets;
      Fmt.pr "ok: materialization is now {%s}@."
        (String.concat ","
           (List.map string_of_int (I.current_materialization t)));
      0
    end
  with
  | Inverda.Migration.Migration_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Sys_error msg ->
    Fmt.epr "%s@." msg;
    2

(* --- the faults command ------------------------------------------------------ *)

let faults_run smoke stride recover =
  let module F = Scenarios.Faults in
  let stride =
    match stride with Some s -> s | None -> if smoke then 7 else 1
  in
  let started = Unix.gettimeofday () in
  if recover then (
    (* crash-recovery mode: kill the instance at every failpoint and
       recover from disk instead of relying on the in-memory rollback *)
    try
      let r = F.recovery_sweep_tasky ~tasks:(if smoke then 3 else 6) ~stride () in
      Fmt.pr "TasKy crash-recovery: %d kills injected over %d statements@."
        r.F.failpoints r.F.statements;
      Fmt.pr "crash-recovery sweep passed in %.1fs (stride %d)@."
        (Unix.gettimeofday () -. started)
        stride;
      0
    with F.Sweep_failure msg ->
      Fmt.epr "CRASH-RECOVERY SWEEP FAILED: %s@." msg;
      1)
  else
  try
    let tasky =
      F.sweep_tasky ~tasks:(if smoke then 6 else 12) ~stride ()
    in
    List.iter
      (fun (mat, (r : F.report)) ->
        Fmt.pr "TasKy {%s}: %d faults injected over %d statements@."
          (String.concat "," (List.map string_of_int mat))
          r.F.failpoints r.F.statements)
      tasky;
    let wiki =
      F.sweep_wikimedia
        ~versions:(if smoke then 4 else 6)
        ~pages:(if smoke then 6 else 10)
        ~links:(if smoke then 8 else 16)
        ~stride ()
    in
    Fmt.pr "Wikimedia: %d faults injected over %d statements@."
      wiki.F.failpoints wiki.F.statements;
    Fmt.pr "fault sweep passed in %.1fs (stride %d)@."
      (Unix.gettimeofday () -. started)
      stride;
    0
  with F.Sweep_failure msg ->
    Fmt.epr "FAULT SWEEP FAILED: %s@." msg;
    1

(* --- durability commands: checkpoint / recover / history --------------------- *)

let cli_errors f =
  try f () with
  | Inverda.Migration.Migration_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Inverda.Comat.Comat_error msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Minidb.Sql_lexer.Cursor.Parse_error msg | Minidb.Sql_lexer.Lex_error (msg, _)
    ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Sys_error msg ->
    Fmt.epr "%s@." msg;
    2

let checkpoint_run dir =
  cli_errors @@ fun () ->
  let t = I.recover dir in
  I.checkpoint t;
  Fmt.pr "checkpoint written at changeset %d (%d schema versions)@."
    (I.current_changeset t)
    (List.length (I.versions t));
  I.detach_wal t;
  0

(* AS OF at [changeset] answers identically to a genesis replay of the log,
   for every table of every schema version alive in that reality *)
let as_of_matches_ground ~dir api changeset =
  let ground = I.replay_to ~dir changeset in
  List.for_all
    (fun version ->
      List.for_all
        (fun table ->
          let sql =
            Fmt.str "SELECT * FROM \"%s\""
              (Inverda.Naming.version_view ~version ~table)
          in
          List.sort compare (I.query_rows ground sql)
          = List.sort compare
              (List.map Array.to_list
                 (I.as_of api ~changeset sql).Minidb.Exec.rel_rows))
        (I.version_tables ground version))
    (I.versions ground)

(* The self-contained round trip: build the TasKy demo over a scratch log
   (checkpoint in the middle, a migration and a live copy after it), kill
   the instance, recover from disk, and check dump byte-identity, copy
   coherence and AS OF against genesis replay. *)
let recover_self_verify () =
  let dir = Scenarios.Faults.fresh_dir () in
  let t = I.create () in
  I.attach_wal t dir;
  I.evolve t Scenarios.Tasky.bidel_initial;
  Scenarios.Tasky.load_tasks t 12;
  I.evolve t Scenarios.Tasky.bidel_do;
  I.evolve t Scenarios.Tasky.bidel_tasky2;
  I.comat_add t "TasKy2.Task";
  let mid = I.current_changeset t in
  I.checkpoint t;
  ignore
    (I.exec_sql t "INSERT INTO Do!.Todo (author, task) VALUES ('Zed', 'r-1')");
  I.materialize t [ "TasKy2" ];
  let live_dump = I.dump t in
  let live_cs = I.current_changeset t in
  I.detach_wal t;
  let r = I.recover dir in
  let ok_dump = I.dump r = live_dump in
  Inverda.Comat.check (I.database r) (I.genealogy r);
  let ok_asof =
    as_of_matches_ground ~dir r mid && as_of_matches_ground ~dir r live_cs
  in
  I.detach_wal r;
  Scenarios.Faults.rm_rf dir;
  if ok_dump && ok_asof then begin
    Fmt.pr
      "recovery verify passed: dump byte-identical after recovery, AS OF \
       matches genesis replay at changesets %d and %d@."
      mid live_cs;
    0
  end
  else begin
    Fmt.epr "RECOVERY VERIFY FAILED: dump_identical=%b as_of_identical=%b@."
      ok_dump ok_asof;
    1
  end

let recover_run dir verify =
  cli_errors @@ fun () ->
  match dir with
  | None ->
    if verify then recover_self_verify ()
    else begin
      Fmt.epr
        "recover: --dir is required (or --verify alone for the \
         self-contained check)@.";
      2
    end
  | Some dir ->
    let t = I.recover dir in
    Fmt.pr "recovered %s: %d schema versions, changeset position %d@." dir
      (List.length (I.versions t))
      (I.current_changeset t);
    if not verify then begin
      I.detach_wal t;
      0
    end
    else begin
      (* recovery is idempotent and the checkpoint is pure acceleration *)
      let d1 = I.dump t in
      I.detach_wal t;
      let t2 = I.recover dir in
      let idempotent = I.dump t2 = d1 in
      let cs = I.current_changeset t2 in
      let genesis_equal = I.dump (I.replay_to ~dir cs) = d1 in
      I.detach_wal t2;
      if idempotent && genesis_equal then begin
        Fmt.pr
          "recovery verified: idempotent, and the checkpointed path agrees \
           with genesis replay at changeset %d@."
          cs;
        0
      end
      else begin
        Fmt.epr "RECOVERY VERIFY FAILED: idempotent=%b genesis_equal=%b@."
          idempotent genesis_equal;
        1
      end
    end

let history_run dir limit =
  cli_errors @@ fun () ->
  let records, torn = Minidb.Wal.read_log dir in
  let records =
    match limit with
    | Some n when n >= 0 && n < List.length records ->
      List.filteri (fun i _ -> i >= List.length records - n) records
    | _ -> records
  in
  List.iter print_record records;
  (match torn with
  | Some ofs ->
    Fmt.pr "(torn tail at byte %d — recovery will repair it)@." ofs
  | None -> ());
  (match Minidb.Wal.read_checkpoint dir with
  | Some ck -> Fmt.pr "(checkpoint at changeset %d)@." ck.Minidb.Wal.ck_lsn
  | None -> ());
  0

(* --- the flatten-coherence command ------------------------------------------- *)

let flatten_run smoke =
  let module FC = Scenarios.Flatten_check in
  let started = Unix.gettimeofday () in
  let pr scenario (r : FC.report) =
    Fmt.pr
      "%s: %d materializations, %d views each — flattened and layered agree \
       (%d flat relations, %d fallbacks)@."
      scenario r.FC.checkpoints r.FC.views r.FC.flat_views r.FC.fallbacks
  in
  try
    pr "TasKy" (FC.check_tasky ~tasks:(if smoke then 25 else 120) ());
    pr "Wikimedia"
      (FC.check_wikimedia
         ~versions:(if smoke then 6 else 12)
         ~pages:(if smoke then 8 else 30)
         ~links:(if smoke then 12 else 60)
         ());
    Fmt.pr "flatten coherence passed in %.1fs@."
      (Unix.gettimeofday () -. started);
    0
  with FC.Coherence_failure msg ->
    Fmt.epr "FLATTEN COHERENCE FAILED: %s@." msg;
    1

(* --- the comat-coherence command --------------------------------------------- *)

let comat_run smoke =
  let module CC = Scenarios.Comat_check in
  let started = Unix.gettimeofday () in
  let pr scenario (r : CC.report) =
    Fmt.pr
      "%s: %d checkpoints — every copy byte-identical to full recomputation \
       (%d copies live, %d incremental, %d maintenance rows)@."
      scenario r.CC.checkpoints r.CC.copies r.CC.incremental
      r.CC.maintenance_rows
  in
  try
    pr "TasKy"
      (CC.check_tasky
         ~tasks:(if smoke then 20 else 80)
         ~ops:(if smoke then 40 else 150)
         ());
    pr "Wikimedia"
      (CC.check_wikimedia
         ~versions:(if smoke then 6 else 10)
         ~pages:(if smoke then 8 else 25)
         ~links:(if smoke then 12 else 50)
         ());
    Fmt.pr "comat coherence passed in %.1fs@." (Unix.gettimeofday () -. started);
    0
  with
  | CC.Coherence_failure msg ->
    Fmt.epr "COMAT COHERENCE FAILED: %s@." msg;
    1
  | Inverda.Comat.Comat_error msg ->
    Fmt.epr "COMAT COHERENCE FAILED: %s@." msg;
    1

(* --- the batch-coherence command --------------------------------------------- *)

let batch_run smoke =
  let module BC = Scenarios.Batch_check in
  let started = Unix.gettimeofday () in
  let pr scenario (r : BC.report) =
    Fmt.pr
      "%s: %d materializations, %d queries each — batch and row executors \
       agree@."
      scenario r.BC.checkpoints r.BC.queries
  in
  try
    pr "TasKy" (BC.check_tasky ~tasks:(if smoke then 25 else 120) ());
    pr "Wikimedia"
      (BC.check_wikimedia
         ~versions:(if smoke then 6 else 171)
         ~pages:(if smoke then 8 else 30)
         ~links:(if smoke then 12 else 60)
         ());
    let faults =
      BC.check_faults
        ~tasks:(if smoke then 6 else 10)
        ?stride:(if smoke then Some 7 else None)
        ()
    in
    let injected =
      List.fold_left
        (fun a (_, (r : Scenarios.Faults.report)) ->
          a + r.Scenarios.Faults.failpoints)
        0 faults
    in
    Fmt.pr
      "fault sweep: %d materializations, %d injected faults — executors \
       agree on every rollback state@."
      (List.length faults) injected;
    Fmt.pr "batch coherence passed in %.1fs@." (Unix.gettimeofday () -. started);
    0
  with
  | BC.Coherence_failure msg ->
    Fmt.epr "BATCH COHERENCE FAILED: %s@." msg;
    1
  | Scenarios.Faults.Sweep_failure msg ->
    Fmt.epr "BATCH COHERENCE FAILED (fault sweep): %s@." msg;
    1

(* --- the verify command ------------------------------------------------------ *)

let verify_run demo script json mutate =
  let module V = Analysis.Verify in
  let t = I.create () in
  (try
     if demo then load_demo t;
     match script with
     | Some path -> I.evolve t (read_script path)
     | None -> ()
   with e ->
     Fmt.epr "error: %s@." (Printexc.to_string e);
     exit 2);
  if Inverda.Genealogy.all_smos (I.genealogy t) = [] then begin
    Fmt.epr "nothing to verify (use --demo and/or --script)@.";
    2
  end
  else begin
    let diags = I.verify_diagnostics t in
    let mutations = if mutate then I.verify_mutations t else [] in
    let survivors =
      List.concat_map
        (fun (id, smo, (r : V.mutation_report)) ->
          List.map (fun s -> (id, smo, s)) r.V.mr_survivors)
        mutations
    in
    let ok =
      I.verify_ok t
      && (not (Analysis.Diagnostic.has_errors diags))
      && survivors = []
    in
    if json then print_endline (I.verify_json t)
    else begin
      List.iter
        (fun (v : I.smo_verification) ->
          Fmt.pr "#%d %s@." v.I.vr_id v.I.vr_smo;
          Fmt.pr "  GetPut: %s@."
            (V.verdict_to_string v.I.vr_laws.V.lr_getput);
          Fmt.pr "  PutGet: %s@."
            (V.verdict_to_string v.I.vr_laws.V.lr_putget))
        (I.verify_report t);
      if diags <> [] then begin
        Fmt.pr "diagnostics:@.";
        Analysis.Diagnostic.report Fmt.stdout diags
      end;
      List.iter
        (fun (id, smo, (r : V.mutation_report)) ->
          Fmt.pr
            "mutants of #%d %s: %d total — %d killed by law, %d by safety, \
             %d by divergence, %d equivalent, %d survived@."
            id smo r.V.mr_total r.V.mr_killed_by_law r.V.mr_killed_by_safety
            r.V.mr_killed_by_divergence r.V.mr_equivalent
            (List.length r.V.mr_survivors);
          List.iter (fun s -> Fmt.pr "  SURVIVOR: %s@." s) r.V.mr_survivors)
        mutations;
      Fmt.pr "%s@."
        (if ok then "verification passed" else "VERIFICATION FAILED")
    end;
    if ok then 0 else 1
  end

(* --- telemetry commands: stats / trace / explain / advise -------------------- *)

let build_instance ?(no_cache = false) ?(no_flatten = false)
    ?(no_batch = false) demo script =
  let t = I.create () in
  if no_cache then I.set_cache t false;
  if no_flatten then I.set_flatten t false;
  if no_batch then I.set_batch t false;
  if demo then load_demo t;
  (match script with Some path -> I.evolve t (read_script path) | None -> ());
  t

(* Demo traffic so stats/trace/advise have something to report: a paper-mix
   workload skewed toward the newer versions, echoing the adoption shift of
   Figures 9/10 (TasKy 20 %, TasKy2 50 %, Do! 30 %). *)
let demo_shares =
  Scenarios.Workload.[ (V_tasky, 0.2); (V_tasky2, 0.5); (V_do, 0.3) ]

let replay_demo_traffic t ops =
  if ops > 0 then
    let r = Scenarios.Workload.make_runner (I.database t) in
    ignore
      (Scenarios.Workload.replay_profile r ~shares:demo_shares
         ~mix:Scenarios.Workload.paper_mix ~ops)

(* "--comat TasKy2.Task,Do!.Todo" -> register the copies before the workload *)
let apply_comat t = function
  | None -> ()
  | Some targets ->
    String.split_on_char ',' targets
    |> List.iter (fun target ->
           let target = String.trim target in
           if target <> "" then I.comat_add t target)

let stats_run demo script comat ops json openmetrics no_cache no_flatten
    no_batch =
  cli_errors @@ fun () ->
  let t = build_instance ~no_cache ~no_flatten ~no_batch demo script in
  apply_comat t comat;
  if demo then replay_demo_traffic t ops;
  if openmetrics then print_string (I.metrics_text t)
  else if json then print_endline (I.stats_json t)
  else print_string (I.stats_text t);
  0

let trace_run demo script ops limit smoke =
  cli_errors @@ fun () ->
  (* the smoke check is about ring wrap-around, so it needs traffic: force
     the demo workload and enough operations to overrun the buffer *)
  let demo = demo || (smoke && script = None) in
  let t = build_instance demo script in
  let ops = if smoke then max ops (2 * Minidb.Metrics.span_capacity) else ops in
  if demo then replay_demo_traffic t ops;
  if smoke then begin
    (* bounded-ring sanity: the buffer never exceeds its capacity, sequence
       numbers stay monotone, and the drop count is consistent *)
    let spans = I.recent_spans t in
    let held = List.length spans in
    let cap = Minidb.Metrics.span_capacity in
    let recorded =
      Minidb.Metrics.total_spans (I.database t).Minidb.Database.metrics
    in
    let monotone =
      let rec go = function
        | a :: (b :: _ as rest) ->
          a.Minidb.Metrics.sp_seq < b.Minidb.Metrics.sp_seq && go rest
        | _ -> true
      in
      go spans
    in
    let ok =
      held <= cap && monotone
      && (recorded < cap || held = cap)
      && recorded >= held
    in
    if ok then begin
      Fmt.pr "trace smoke passed: %d spans recorded, %d held (capacity %d)@."
        recorded held cap;
      0
    end
    else begin
      Fmt.epr
        "TRACE SMOKE FAILED: recorded=%d held=%d capacity=%d monotone=%b@."
        recorded held cap monotone;
      1
    end
  end
  else begin
    List.iter
      (fun sp -> print_endline (Inverda.Telemetry.span_json sp))
      (I.recent_spans ?limit t);
    0
  end

let explain_run demo script comat json analyze sql =
  cli_errors @@ fun () ->
  let t = build_instance demo script in
  apply_comat t comat;
  if analyze then print_string (I.explain_analyze t sql)
  else if json then print_endline (I.explain_json t sql)
  else print_string (I.explain t sql);
  0

(* --- the profile command ----------------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

(* The smoke mode runs a read and a cascading write under forced tracing and
   asserts the trace trees carry the expected span kinds: the read must show
   the synthesized parse child and the delta-code view stack, the write its
   INSTEAD OF trigger cascade. *)
let profile_run demo script smoke sql =
  cli_errors @@ fun () ->
  if smoke then begin
    let t = build_instance true script in
    let sel = I.profile t "SELECT author, task FROM Do!.Todo" in
    let ins =
      I.profile t "INSERT INTO Do!.Todo (author, task) VALUES ('Smoke', 'probe')"
    in
    let ok =
      contains sel "select" && contains sel "parse" && contains sel "spans"
      && contains ins "insert" && contains ins "trigger"
    in
    if ok then begin
      Fmt.pr "profile smoke passed:@.%s%s%!" sel ins;
      0
    end
    else begin
      Fmt.epr "PROFILE SMOKE FAILED:@.%s%s%!" sel ins;
      1
    end
  end
  else
    match sql with
    | None ->
      Fmt.epr "profile: a SQL statement is required (or --smoke)@.";
      2
    | Some sql ->
      let t = build_instance demo script in
      print_string (I.profile t sql);
      0

(* "TasKy=0.2,TasKy2=0.5,Do!=0.3" -> an Advisor.profile *)
let parse_profile s =
  String.split_on_char ',' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None
         else
           match String.index_opt part '=' with
           | None ->
             failwith
               (Fmt.str "bad profile entry %S (expected version=weight)" part)
           | Some i ->
             let name = String.trim (String.sub part 0 i) in
             let w =
               String.trim
                 (String.sub part (i + 1) (String.length part - i - 1))
             in
             (match float_of_string_opt w with
             | Some f -> Some (name, f)
             | None ->
               failwith (Fmt.str "bad weight %S for version %s" w name)))

let print_recommendation t what (r : Inverda.Advisor.recommendation) =
  let mat_str mat =
    "{" ^ String.concat "," (List.map string_of_int mat) ^ "}"
  in
  Fmt.pr "recommended materialization (%s): %s, estimated cost %.3f@." what
    (mat_str r.Inverda.Advisor.materialization)
    r.Inverda.Advisor.estimated_cost;
  List.iter
    (fun id -> Fmt.pr "  materialize %s@." (smo_label t id))
    r.Inverda.Advisor.materialization;
  let current = I.current_materialization t in
  if List.sort compare current = List.sort compare r.Inverda.Advisor.materialization
  then Fmt.pr "already at the recommended materialization@."
  else Fmt.pr "current materialization is %s@." (mat_str current);
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  Fmt.pr "alternatives:@.";
  List.iter
    (fun (mat, cost) -> Fmt.pr "  %s cost %.3f@." (mat_str mat) cost)
    (take 5 r.Inverda.Advisor.alternatives)

let advise_run demo script observed ops profile_str =
  cli_errors @@ fun () ->
  let t = build_instance demo script in
  if observed then begin
    if demo then replay_demo_traffic t ops;
    match I.advise_observed t with
    | None ->
      Fmt.epr
        "no observed traffic to advise from (run a workload first, or use \
         --profile)@.";
      1
    | Some r ->
      Fmt.pr "observed profile:@.";
      List.iter
        (fun (v, w) -> Fmt.pr "  %-16s %.1f%%@." v (100.0 *. w))
        (I.observed_profile t);
      print_recommendation t "observed traffic" r;
      0
  end
  else
    match profile_str with
    | None ->
      Fmt.epr "one of --observed or --profile is required@.";
      2
    | Some s -> (
      match parse_profile s with
      | exception Failure msg ->
        Fmt.epr "error: %s@." msg;
        2
      | profile -> (
        match I.advise t profile with
        | None ->
          Fmt.epr "no schema versions to advise on@.";
          1
        | Some r ->
          print_recommendation t "given profile" r;
          0))

open Cmdliner

let demo =
  let doc = "Preload the TasKy example (three schema versions, 20 tasks)." in
  Arg.(value & flag & info [ "demo" ] ~doc)

let no_cache =
  let doc =
    "Disable the cross-statement view-result cache (every read re-evaluates \
     the delta-view stack)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let no_flatten =
  let doc =
    "Disable the delta-code flattening pass (every derived view is the \
     layered one-hop stack regardless of genealogy distance)."
  in
  Arg.(value & flag & info [ "no-flatten" ] ~doc)

let no_batch =
  let doc =
    "Disable the columnar batch executor (every read runs the row-at-a-time \
     interpreter instead of selection vectors over column snapshots)."
  in
  Arg.(value & flag & info [ "no-batch" ] ~doc)

let dir_opt =
  let doc =
    "Durability directory: attach a write-ahead log there (recovering from \
     it first when one exists), enabling $(b,.checkpoint), $(b,.history) and \
     $(b,AS OF) queries."
  in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let dir_req =
  let doc = "Durability directory holding the write-ahead log." in
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let shell_term =
  Term.(const run $ demo $ no_cache $ no_flatten $ no_batch $ dir_opt)

let shell_cmd =
  let doc = "Interactive shell (the default command)" in
  Cmd.v (Cmd.info "shell" ~doc) shell_term

let lint_cmd =
  let file =
    let doc = "BiDEL script to lint ($(b,-) reads standard input)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let json =
    let doc = "Emit diagnostics as a JSON array." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let shallow =
    let doc =
      "Script lints only: skip replaying the script to check Datalog rule \
       safety and typecheck the generated delta code."
    in
    Arg.(value & flag & info [ "shallow" ] ~doc)
  in
  let deny_warnings =
    let doc = "Exit non-zero on warnings too (for CI gates)." in
    Arg.(value & flag & info [ "deny-warnings" ] ~doc)
  in
  let unused =
    let doc =
      "Also report pedantic lints: singleton variables in generated mapping \
       rules ($(b,DLG006))."
    in
    Arg.(value & flag & info [ "unused" ] ~doc)
  in
  let doc = "Statically analyze a BiDEL evolution script" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses the script and reports coded diagnostics: evolution-script \
         lints ($(b,BDL0xx)), Datalog rule safety violations ($(b,DLG0xx)) \
         and delta-code type errors ($(b,IVD0xx)), each with its source \
         location where available. Exits non-zero when any error-severity \
         diagnostic is reported; warnings alone exit zero unless \
         $(b,--deny-warnings) is given.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(const lint $ file $ json $ shallow $ deny_warnings $ unused)

let materialize_cmd =
  let targets =
    let doc =
      "Migration targets: schema version names or $(b,version.table)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"TARGET" ~doc)
  in
  let script =
    let doc =
      "BiDEL evolution script to replay first ($(b,-) reads standard input)."
    in
    Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let dry_run =
    let doc =
      "Report the flip plan (SMO instances to virtualize and materialize, in \
       execution order) without touching any data."
    in
    Arg.(value & flag & info [ "dry-run" ] ~doc)
  in
  let doc = "Run (or plan) a MATERIALIZE migration" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the catalog from $(b,--demo) and/or $(b,--script), prints the \
         flip plan for the given targets and — unless $(b,--dry-run) is set — \
         executes the migration. Migrations are atomic: on any failure the \
         database rolls back to its pre-command state.";
    ]
  in
  Cmd.v
    (Cmd.info "materialize" ~doc ~man)
    Term.(const materialize_run $ demo $ script $ dry_run $ targets)

let faults_cmd =
  let smoke =
    let doc =
      "Small genealogies and a coarse default stride, for CI smoke checks."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let stride =
    let doc =
      "Inject a fault at every STRIDE-th statement instead of every one."
    in
    Arg.(value & opt (some int) None & info [ "stride" ] ~docv:"STRIDE" ~doc)
  in
  let recover =
    let doc =
      "Crash-recovery sweep instead: kill the instance at every failpoint of \
       a logged TasKy workload, recover from disk, and assert the recovered \
       dump is byte-identical to the pre-crash committed state."
    in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let doc = "Fault-injection sweep of the migration operation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Arms a statement-indexed failpoint at every prefix of the TasKy \
         migrations (all five valid materializations) and of a Wikimedia-style \
         genealogy's migration, and asserts after every injected failure that \
         the rolled-back database dump is byte-identical to the pre-migration \
         dump and that every version view still answers with its original \
         contents. Exits non-zero on the first violation.";
      `P
        "With $(b,--recover) the sweep targets durability instead: for every \
         failpoint of a write-ahead-logged TasKy workload (DML, checkpoint, \
         a transaction and a migration) the instance is killed, recovered \
         from the on-disk log, and checked for byte-identical dumps, \
         coherent co-materialized copies, and idempotent recovery.";
    ]
  in
  Cmd.v (Cmd.info "faults" ~doc ~man)
    Term.(const faults_run $ smoke $ stride $ recover)

let comat_coherence_cmd =
  let smoke =
    let doc = "Smaller genealogies and data sets, for CI smoke checks." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc = "Check incremental copy maintenance against full recomputation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the TasKy genealogy (swept through all five valid \
         materializations with every derived table version co-materialized) \
         and a deep Wikimedia-style genealogy (copies in the middle and at \
         the far end, then migrated), runs mixed write workloads, and at \
         every checkpoint asserts that each copy table is byte-identical to \
         a full recomputation of its definition and that every version view \
         answers identically with and without the copies. Exits non-zero on \
         the first divergence.";
    ]
  in
  Cmd.v (Cmd.info "comat-coherence" ~doc ~man) Term.(const comat_run $ smoke)

let flatten_coherence_cmd =
  let smoke =
    let doc = "Smaller genealogies and data sets, for CI smoke checks." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc = "Check flattened against layered delta code" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the TasKy genealogy (swept through all five valid \
         materializations) and a Wikimedia-style genealogy (migrated to a \
         middle and the newest version) and, at every checkpoint, toggles \
         the flattening pass: every version view must answer identically \
         with flattened (path-composed, single-hop) and layered (one view \
         per SMO) delta code, and the engine state outside the view \
         definitions must be byte-identical. Exits non-zero on the first \
         divergence.";
    ]
  in
  Cmd.v
    (Cmd.info "flatten-coherence" ~doc ~man)
    Term.(const flatten_run $ smoke)

let batch_coherence_cmd =
  let smoke =
    let doc = "Smaller genealogies and data sets, for CI smoke checks." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc = "Check the columnar batch executor against the row path" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the TasKy genealogy (swept through all five valid \
         materializations) and a Wikimedia-style genealogy (migrated to a \
         middle and the newest version) and, at every checkpoint, runs a \
         query battery — scans, filtered projections, aggregates and \
         self-joins — over every version view with the columnar batch \
         executor on and off: answers must be identical and the engine \
         state byte-identical across the toggle. A step-indexed \
         fault-injection sweep then re-checks coherence after every \
         injected migration failure's rollback. Exits non-zero on the \
         first divergence.";
    ]
  in
  Cmd.v (Cmd.info "batch-coherence" ~doc ~man) Term.(const batch_run $ smoke)

(* shared options of the telemetry commands *)
let script_opt =
  let doc =
    "BiDEL evolution script to replay first ($(b,-) reads standard input)."
  in
  Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE" ~doc)

let ops_opt =
  let doc =
    "With $(b,--demo): run this many workload operations (paper mix, skewed \
     toward the newer versions) before reporting, so the telemetry has \
     traffic to show."
  in
  Arg.(value & opt int 200 & info [ "ops" ] ~docv:"N" ~doc)

let json_opt =
  let doc = "Emit JSON instead of the human-readable rendering." in
  Arg.(value & flag & info [ "json" ] ~doc)

let comat_opt =
  let doc =
    "Co-materialize these table versions first (comma-separated \
     $(b,Version.Table) targets): each gets a redundant, incrementally \
     maintained physical copy that serves its reads."
  in
  Arg.(value & opt (some string) None & info [ "comat" ] ~docv:"TARGETS" ~doc)

let stats_cmd =
  let doc = "Unified telemetry counters (cache, flatten fallbacks, traffic)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Prints the engine's workload telemetry: view-cache hits/misses, \
         flatten fallbacks, per-schema-version and per-table-version access \
         counters, the observed workload profile and the latency histograms. \
         $(b,--json) emits one JSON object (the schema checked in CI); \
         $(b,--openmetrics) emits the Prometheus/OpenMetrics text exposition \
         for scraping.";
    ]
  in
  let openmetrics =
    let doc =
      "Emit the OpenMetrics text exposition (counters, per-version traffic, \
       latency histograms with cumulative buckets, terminated by $(b,# EOF))."
    in
    Arg.(value & flag & info [ "openmetrics" ] ~doc)
  in
  Cmd.v (Cmd.info "stats" ~doc ~man)
    Term.(
      const stats_run $ demo $ script_opt $ comat_opt $ ops_opt $ json_opt
      $ openmetrics $ no_cache $ no_flatten $ no_batch)

let trace_cmd =
  let limit =
    let doc = "Emit at most this many spans (default: all buffered)." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)
  in
  let smoke =
    let doc =
      "Bounded-ring-buffer sanity check (for CI): run more operations than \
       the ring holds and assert occupancy and sequence monotonicity."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc = "Statement spans as JSON lines" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a workload (with $(b,--demo)) and emits the buffered \
         statement spans — parse/compile/execute nanoseconds, targets, rows, \
         cache hits, trigger hops, view-expansion depth — one JSON object \
         per line, oldest first.";
    ]
  in
  Cmd.v (Cmd.info "trace" ~doc ~man)
    Term.(const trace_run $ demo $ script_opt $ ops_opt $ limit $ smoke)

let explain_cmd =
  let sql =
    let doc = "The SQL statement to explain (quote it)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let doc = "The delta-code path a statement traverses" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "For every object the statement names: its role in the genealogy, \
         the Section 6 access path from its table version to the data, the \
         flattening decision (single composed hop or layered stack), the \
         installed view stack, the physical tables touched and — for \
         INSERT/UPDATE/DELETE — the trigger cascade the write would fire. \
         $(b,--analyze) additionally executes the statement under profile \
         tracing and annotates the plan with actual per-node rows and \
         timings, cross-checked against the executed row count.";
    ]
  in
  let analyze =
    let doc =
      "EXPLAIN ANALYZE: really execute the statement and annotate the static \
       plan with measured per-node rows and timings."
    in
    Arg.(value & flag & info [ "analyze" ] ~doc)
  in
  Cmd.v (Cmd.info "explain" ~doc ~man)
    Term.(
      const explain_run $ demo $ script_opt $ comat_opt $ json_opt $ analyze
      $ sql)

let profile_cmd =
  let sql =
    let doc = "The SQL statement to profile (quote it)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let smoke =
    let doc =
      "Self-check for CI: profile a read and a cascading write on the demo \
       catalog and assert the trace trees carry parse, view and trigger \
       spans."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc = "Execute one statement and print its hierarchical trace tree" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the statement with tracing forced into profile mode (exact \
         per-operator row counts) and prints the resulting span tree: \
         parse/plan, every scan, view expansion, join and trigger hop with \
         its path (batch, row, index, view-pushdown, cache hit/miss), \
         duration and row counts, plus a one-line summary.";
    ]
  in
  Cmd.v (Cmd.info "profile" ~doc ~man)
    Term.(const profile_run $ demo $ script_opt $ smoke $ sql)

let advise_cmd =
  let observed =
    let doc =
      "Advise from observed traffic (the telemetry counters) instead of a \
       hand-written profile."
    in
    Arg.(value & flag & info [ "observed" ] ~doc)
  in
  let profile =
    let doc =
      "Hand-written workload profile, e.g. \
       $(b,TasKy=0.2,TasKy2=0.5,Do!=0.3)."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"PROFILE" ~doc)
  in
  let doc = "Recommend a materialization schema (Section 8.2 advisor)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Scores every valid materialization schema against a workload \
         profile — given by hand with $(b,--profile), or derived from the \
         observed per-version traffic with $(b,--observed) — and prints the \
         cheapest one with its alternatives.";
    ]
  in
  Cmd.v (Cmd.info "advise" ~doc ~man)
    Term.(const advise_run $ demo $ script_opt $ observed $ ops_opt $ profile)

let verify_cmd =
  let mutate =
    let doc =
      "Also run the single-atom mutation harness: corrupt each mapping rule \
       set one atom at a time and assert the verifier rejects (or proves \
       equivalent) every mutant."
    in
    Arg.(value & flag & info [ "mutate" ] ~doc)
  in
  let doc = "Prove the lens laws for every SMO instance" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the catalog from $(b,--demo) and/or $(b,--script) and runs \
         the symbolic bidirectionality verifier on every SMO instance: both \
         lens laws (GetPut and PutGet) are proved with a chase over \
         canonical instances with labeled nulls, falling back to a grounded \
         sweep, with a minimized concrete counterexample on refutation. \
         Also reports $(b,VRF002) (overlapping UNION ALL branches in \
         flattened delta code) and $(b,VRF003) (trigger cascades with \
         overlapping write sets). Exits non-zero on any refuted law, \
         error-severity diagnostic or surviving mutant.";
    ]
  in
  Cmd.v (Cmd.info "verify" ~doc ~man)
    Term.(const verify_run $ demo $ script_opt $ json_opt $ mutate)

let checkpoint_cmd =
  let doc = "Write a checkpoint for a durability directory" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Recovers the catalog from the write-ahead log in $(b,--dir) and \
         writes a fresh checkpoint at the current changeset position. The \
         log itself is never truncated, so $(b,AS OF) time travel to any \
         earlier changeset keeps working; the checkpoint only accelerates \
         future recoveries.";
    ]
  in
  Cmd.v (Cmd.info "checkpoint" ~doc ~man) Term.(const checkpoint_run $ dir_req)

let recover_cmd =
  let verify =
    let doc =
      "After recovering, check that recovery is idempotent and that the \
       checkpointed path agrees with a genesis replay of the log. Without \
       $(b,--dir), run a self-contained round trip in a scratch directory \
       instead (build, kill, recover, compare)."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let doc = "Recover a catalog from its write-ahead log" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads the newest checkpoint in $(b,--dir) (if any), repairs a torn \
         log tail, replays the committed log suffix through the full \
         evolution and DML path, and reports the recovered changeset \
         position. With $(b,--verify) it additionally cross-checks the \
         result; with $(b,--verify) and no $(b,--dir) it builds a TasKy \
         catalog with a mid-stream checkpoint, a migration and a \
         co-materialized copy in a scratch directory, kills it, and asserts \
         dump byte-identity plus $(b,AS OF) agreement with genesis replay.";
    ]
  in
  Cmd.v (Cmd.info "recover" ~doc ~man)
    Term.(const recover_run $ dir_opt $ verify)

let history_cmd =
  let limit =
    let doc = "Show only the newest $(docv) changesets." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)
  in
  let doc = "Print the changeset history of a durability directory" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads the write-ahead log in $(b,--dir) without replaying it and \
         prints one line per committed changeset: its id, record kind, the \
         table version it targeted, and the logged statement. A torn tail \
         or an existing checkpoint is noted after the listing.";
    ]
  in
  Cmd.v (Cmd.info "history" ~doc ~man) Term.(const history_run $ dir_req $ limit)

let cmd =
  let doc = "Co-existing schema versions: shell and static analyzer" in
  Cmd.group ~default:shell_term (Cmd.info "inverda" ~doc)
    [
      shell_cmd;
      lint_cmd;
      materialize_cmd;
      faults_cmd;
      flatten_coherence_cmd;
      comat_coherence_cmd;
      batch_coherence_cmd;
      verify_cmd;
      stats_cmd;
      trace_cmd;
      explain_cmd;
      profile_cmd;
      advise_cmd;
      checkpoint_cmd;
      recover_cmd;
      history_cmd;
    ]

let () = exit (Cmd.eval' cmd)
