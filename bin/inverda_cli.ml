(* Interactive InVerDa shell: BiDEL evolution statements, the MATERIALIZE
   migration command, and plain SQL against any "version.table" view, all in
   one REPL.

     dune exec bin/inverda_cli.exe            # interactive
     dune exec bin/inverda_cli.exe -- --demo  # pre-load the TasKy example
     echo "script" | dune exec bin/inverda_cli.exe

   Statements end with ';'. Meta commands: .help .catalog .versions .smos
   .quit *)

module I = Inverda.Api

let help_text =
  {|Statements (end with ';'):
  CREATE SCHEMA VERSION <v> [FROM <v0>] WITH <smo>; <smo>; ...
      SMOs: CREATE TABLE t(a,b) | DROP TABLE t | RENAME TABLE t INTO u
            ADD COLUMN c AS <expr> INTO t | DROP COLUMN c FROM t DEFAULT <expr>
            RENAME COLUMN c IN t TO d
            DECOMPOSE TABLE t INTO r(a,..)[, s(b,..)] ON PK|FOREIGN KEY fk|<cond>
            [OUTER] JOIN TABLE r, s INTO t ON PK|FOREIGN KEY fk|<cond>
            SPLIT TABLE t INTO r WITH <cond> [, s WITH <cond>]
            MERGE TABLE r (<cond>), s (<cond>) INTO t
  DROP SCHEMA VERSION <v>;
  MATERIALIZE '<version>' | '<version>.<table>', ...;
  any SQL: SELECT/INSERT/UPDATE/DELETE ... FROM <version>.<table>
Meta commands: .help  .catalog  .versions  .smos  .quit|}

let is_bidel sql =
  let up = String.uppercase_ascii (String.trim sql) in
  let starts p =
    String.length up >= String.length p && String.sub up 0 (String.length p) = p
  in
  starts "CREATE SCHEMA" || starts "DROP SCHEMA" || starts "MATERIALIZE"

let print_relation (rel : Minidb.Exec.relation) =
  Fmt.pr "%s@." (String.concat " | " rel.Minidb.Exec.rel_cols);
  List.iter
    (fun row ->
      Fmt.pr "%s@."
        (String.concat " | " (Array.to_list (Array.map Minidb.Value.to_string row))))
    rel.Minidb.Exec.rel_rows;
  Fmt.pr "(%d rows)@." (List.length rel.Minidb.Exec.rel_rows)

let execute t input =
  try
    if is_bidel input then begin
      I.evolve t input;
      Fmt.pr "ok@."
    end
    else
      match Minidb.Engine.exec (I.database t) input with
      | Minidb.Exec.Rows rel -> print_relation rel
      | Minidb.Exec.Affected n -> Fmt.pr "%d rows affected@." n
      | Minidb.Exec.Done -> Fmt.pr "ok@."
  with
  | Minidb.Sql_lexer.Cursor.Parse_error msg -> Fmt.pr "parse error: %s@." msg
  | Minidb.Sql_lexer.Lex_error (msg, _) -> Fmt.pr "lex error: %s@." msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Inverda.Migration.Migration_error msg ->
    Fmt.pr "error: %s@." msg
  | Analysis.Diagnostic.Rejected ds ->
    Fmt.pr "rejected by the static analyzer:@.";
    Analysis.Diagnostic.report Fmt.stdout ds
  | Minidb.Table.Constraint_violation msg -> Fmt.pr "constraint violation: %s@." msg
  | Minidb.Value.Type_error msg -> Fmt.pr "type error: %s@." msg
  | Bidel.Smo_semantics.Semantics_error msg -> Fmt.pr "SMO error: %s@." msg

let meta t line =
  match String.trim line with
  | ".help" -> Fmt.pr "%s@." help_text
  | ".catalog" -> Fmt.pr "%s@." (I.describe t)
  | ".versions" ->
    List.iter
      (fun v ->
        Fmt.pr "%s: %s@." v (String.concat ", " (I.version_tables t v)))
      (I.versions t)
  | ".smos" ->
    List.iter
      (fun (si : Inverda.Genealogy.smo_instance) ->
        Fmt.pr "#%d %s (%s)@." si.Inverda.Genealogy.si_id
          (Bidel.Printer.smo_to_string si.Inverda.Genealogy.si_smo)
          (if si.Inverda.Genealogy.si_materialized then "materialized"
           else "virtualized"))
      (Inverda.Genealogy.all_smos (I.genealogy t))
  | ".quit" | ".exit" -> exit 0
  | other -> Fmt.pr "unknown meta command %s (try .help)@." other

let repl t =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    Fmt.pr "InVerDa shell — co-existing schema versions (type .help)@.";
    Fmt.pr "inverda> %!"
  end;
  let buf = Buffer.create 256 in
  try
    while true do
      let line = input_line stdin in
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[0] = '.' && Buffer.length buf = 0
      then meta t trimmed
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        (* a statement ends when the buffered input ends with ';' *)
        let s = String.trim (Buffer.contents buf) in
        if String.length s > 0 && s.[String.length s - 1] = ';' then begin
          Buffer.clear buf;
          execute t s
        end
      end;
      if interactive then Fmt.pr "inverda> %!"
    done
  with End_of_file ->
    let rest = String.trim (Buffer.contents buf) in
    if rest <> "" then execute t rest

let run demo no_cache no_flatten =
  let t = I.create () in
  if no_cache then I.set_cache t false;
  if no_flatten then I.set_flatten t false;
  if demo then begin
    I.evolve t Scenarios.Tasky.bidel_initial;
    Scenarios.Tasky.load_tasks t 20;
    I.evolve t Scenarios.Tasky.bidel_do;
    I.evolve t Scenarios.Tasky.bidel_tasky2;
    Fmt.pr "loaded the TasKy demo: versions %s@."
      (String.concat ", " (I.versions t))
  end;
  repl t;
  0

(* --- the lint command ------------------------------------------------------- *)

let read_script path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_text path In_channel.input_all

(* Replay the script on a scratch instance and collect the deeper layers'
   diagnostics: rule-set safety for every instantiated SMO, the typechecked
   delta code of the final state, and a warning for every relation whose
   flattening fell back to the layered view stack. *)
let deep_diagnostics src =
  let t = I.create ~strict:false () in
  match I.evolve t src with
  | () ->
    let fallbacks =
      List.map
        (fun (rel, why) ->
          Analysis.Diagnostic.warning "IVD011"
            "delta code for %s not flattened (layered fallback): %s" rel why)
        (I.flatten_fallbacks t)
    in
    I.rule_diagnostics t @ I.delta_diagnostics t @ fallbacks
  | exception e ->
    [
      Analysis.Diagnostic.error "IVD000" "script replay failed: %s"
        (match e with
        | Inverda.Genealogy.Catalog_error m
        | Inverda.Migration.Migration_error m
        | Minidb.Database.Engine_error m
        | Minidb.Exec.Exec_error m
        | Bidel.Smo_semantics.Semantics_error m ->
          m
        | e -> Printexc.to_string e);
    ]

let lint file json shallow deny_warnings =
  match read_script file with
  | exception Sys_error msg ->
    Fmt.epr "%s@." msg;
    2
  | src ->
    let script = Analysis.lint_source src in
    (* replaying an erroneous script would only duplicate its findings *)
    let deep =
      if shallow || Analysis.Diagnostic.has_errors script then []
      else deep_diagnostics src
    in
    let all = script @ deep in
    if json then print_endline (Analysis.Diagnostic.list_to_json all)
    else begin
      Analysis.Diagnostic.report Fmt.stdout all;
      if all = [] then Fmt.pr "no diagnostics@."
    end;
    if Analysis.Diagnostic.has_errors all || (deny_warnings && all <> []) then 1
    else 0

(* --- the materialize command ------------------------------------------------ *)

let load_demo t =
  I.evolve t Scenarios.Tasky.bidel_initial;
  Scenarios.Tasky.load_tasks t 20;
  I.evolve t Scenarios.Tasky.bidel_do;
  I.evolve t Scenarios.Tasky.bidel_tasky2

let smo_label t id =
  let si = Inverda.Genealogy.smo (I.genealogy t) id in
  Fmt.str "#%d %s" id
    (Bidel.Printer.smo_to_string si.Inverda.Genealogy.si_smo)

let materialize_run demo script dry_run targets =
  try
    let t = I.create () in
    if demo then load_demo t;
    (match script with Some path -> I.evolve t (read_script path) | None -> ());
    let to_virtualize, to_materialize = I.migration_plan t targets in
    let print_plan () =
      Fmt.pr "flip plan for MATERIALIZE %s:@."
        (String.concat ", " (List.map (Fmt.str "'%s'") targets));
      if to_virtualize = [] && to_materialize = [] then
        Fmt.pr "  nothing to do (already at the requested materialization)@.";
      List.iter
        (fun id -> Fmt.pr "  virtualize   %s@." (smo_label t id))
        to_virtualize;
      List.iter
        (fun id -> Fmt.pr "  materialize  %s@." (smo_label t id))
        to_materialize
    in
    print_plan ();
    if dry_run then 0
    else begin
      I.materialize t targets;
      Fmt.pr "ok: materialization is now {%s}@."
        (String.concat ","
           (List.map string_of_int (I.current_materialization t)));
      0
    end
  with
  | Inverda.Migration.Migration_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Sys_error msg ->
    Fmt.epr "%s@." msg;
    2

(* --- the faults command ------------------------------------------------------ *)

let faults_run smoke stride =
  let module F = Scenarios.Faults in
  let stride =
    match stride with Some s -> s | None -> if smoke then 7 else 1
  in
  let started = Unix.gettimeofday () in
  try
    let tasky =
      F.sweep_tasky ~tasks:(if smoke then 6 else 12) ~stride ()
    in
    List.iter
      (fun (mat, (r : F.report)) ->
        Fmt.pr "TasKy {%s}: %d faults injected over %d statements@."
          (String.concat "," (List.map string_of_int mat))
          r.F.failpoints r.F.statements)
      tasky;
    let wiki =
      F.sweep_wikimedia
        ~versions:(if smoke then 4 else 6)
        ~pages:(if smoke then 6 else 10)
        ~links:(if smoke then 8 else 16)
        ~stride ()
    in
    Fmt.pr "Wikimedia: %d faults injected over %d statements@."
      wiki.F.failpoints wiki.F.statements;
    Fmt.pr "fault sweep passed in %.1fs (stride %d)@."
      (Unix.gettimeofday () -. started)
      stride;
    0
  with F.Sweep_failure msg ->
    Fmt.epr "FAULT SWEEP FAILED: %s@." msg;
    1

(* --- the flatten-coherence command ------------------------------------------- *)

let flatten_run smoke =
  let module FC = Scenarios.Flatten_check in
  let started = Unix.gettimeofday () in
  let pr scenario (r : FC.report) =
    Fmt.pr
      "%s: %d materializations, %d views each — flattened and layered agree \
       (%d flat relations, %d fallbacks)@."
      scenario r.FC.checkpoints r.FC.views r.FC.flat_views r.FC.fallbacks
  in
  try
    pr "TasKy" (FC.check_tasky ~tasks:(if smoke then 25 else 120) ());
    pr "Wikimedia"
      (FC.check_wikimedia
         ~versions:(if smoke then 6 else 12)
         ~pages:(if smoke then 8 else 30)
         ~links:(if smoke then 12 else 60)
         ());
    Fmt.pr "flatten coherence passed in %.1fs@."
      (Unix.gettimeofday () -. started);
    0
  with FC.Coherence_failure msg ->
    Fmt.epr "FLATTEN COHERENCE FAILED: %s@." msg;
    1

open Cmdliner

let demo =
  let doc = "Preload the TasKy example (three schema versions, 20 tasks)." in
  Arg.(value & flag & info [ "demo" ] ~doc)

let no_cache =
  let doc =
    "Disable the cross-statement view-result cache (every read re-evaluates \
     the delta-view stack)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let no_flatten =
  let doc =
    "Disable the delta-code flattening pass (every derived view is the \
     layered one-hop stack regardless of genealogy distance)."
  in
  Arg.(value & flag & info [ "no-flatten" ] ~doc)

let shell_term = Term.(const run $ demo $ no_cache $ no_flatten)

let shell_cmd =
  let doc = "Interactive shell (the default command)" in
  Cmd.v (Cmd.info "shell" ~doc) shell_term

let lint_cmd =
  let file =
    let doc = "BiDEL script to lint ($(b,-) reads standard input)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let json =
    let doc = "Emit diagnostics as a JSON array." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let shallow =
    let doc =
      "Script lints only: skip replaying the script to check Datalog rule \
       safety and typecheck the generated delta code."
    in
    Arg.(value & flag & info [ "shallow" ] ~doc)
  in
  let deny_warnings =
    let doc = "Exit non-zero on warnings too (for CI gates)." in
    Arg.(value & flag & info [ "deny-warnings" ] ~doc)
  in
  let doc = "Statically analyze a BiDEL evolution script" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses the script and reports coded diagnostics: evolution-script \
         lints ($(b,BDL0xx)), Datalog rule safety violations ($(b,DLG0xx)) \
         and delta-code type errors ($(b,IVD0xx)), each with its source \
         location where available. Exits non-zero when any error-severity \
         diagnostic is reported; warnings alone exit zero unless \
         $(b,--deny-warnings) is given.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(const lint $ file $ json $ shallow $ deny_warnings)

let materialize_cmd =
  let targets =
    let doc =
      "Migration targets: schema version names or $(b,version.table)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"TARGET" ~doc)
  in
  let script =
    let doc =
      "BiDEL evolution script to replay first ($(b,-) reads standard input)."
    in
    Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let dry_run =
    let doc =
      "Report the flip plan (SMO instances to virtualize and materialize, in \
       execution order) without touching any data."
    in
    Arg.(value & flag & info [ "dry-run" ] ~doc)
  in
  let doc = "Run (or plan) a MATERIALIZE migration" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the catalog from $(b,--demo) and/or $(b,--script), prints the \
         flip plan for the given targets and — unless $(b,--dry-run) is set — \
         executes the migration. Migrations are atomic: on any failure the \
         database rolls back to its pre-command state.";
    ]
  in
  Cmd.v
    (Cmd.info "materialize" ~doc ~man)
    Term.(const materialize_run $ demo $ script $ dry_run $ targets)

let faults_cmd =
  let smoke =
    let doc =
      "Small genealogies and a coarse default stride, for CI smoke checks."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let stride =
    let doc =
      "Inject a fault at every STRIDE-th statement instead of every one."
    in
    Arg.(value & opt (some int) None & info [ "stride" ] ~docv:"STRIDE" ~doc)
  in
  let doc = "Fault-injection sweep of the migration operation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Arms a statement-indexed failpoint at every prefix of the TasKy \
         migrations (all five valid materializations) and of a Wikimedia-style \
         genealogy's migration, and asserts after every injected failure that \
         the rolled-back database dump is byte-identical to the pre-migration \
         dump and that every version view still answers with its original \
         contents. Exits non-zero on the first violation.";
    ]
  in
  Cmd.v (Cmd.info "faults" ~doc ~man) Term.(const faults_run $ smoke $ stride)

let flatten_coherence_cmd =
  let smoke =
    let doc = "Smaller genealogies and data sets, for CI smoke checks." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc = "Check flattened against layered delta code" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the TasKy genealogy (swept through all five valid \
         materializations) and a Wikimedia-style genealogy (migrated to a \
         middle and the newest version) and, at every checkpoint, toggles \
         the flattening pass: every version view must answer identically \
         with flattened (path-composed, single-hop) and layered (one view \
         per SMO) delta code, and the engine state outside the view \
         definitions must be byte-identical. Exits non-zero on the first \
         divergence.";
    ]
  in
  Cmd.v
    (Cmd.info "flatten-coherence" ~doc ~man)
    Term.(const flatten_run $ smoke)

let cmd =
  let doc = "Co-existing schema versions: shell and static analyzer" in
  Cmd.group ~default:shell_term (Cmd.info "inverda" ~doc)
    [ shell_cmd; lint_cmd; materialize_cmd; faults_cmd; flatten_coherence_cmd ]

let () = exit (Cmd.eval' cmd)
