(* Interactive InVerDa shell: BiDEL evolution statements, the MATERIALIZE
   migration command, and plain SQL against any "version.table" view, all in
   one REPL.

     dune exec bin/inverda_cli.exe            # interactive
     dune exec bin/inverda_cli.exe -- --demo  # pre-load the TasKy example
     echo "script" | dune exec bin/inverda_cli.exe

   Statements end with ';'. Meta commands: .help .catalog .versions .smos
   .quit *)

module I = Inverda.Api

let help_text =
  {|Statements (end with ';'):
  CREATE SCHEMA VERSION <v> [FROM <v0>] WITH <smo>; <smo>; ...
      SMOs: CREATE TABLE t(a,b) | DROP TABLE t | RENAME TABLE t INTO u
            ADD COLUMN c AS <expr> INTO t | DROP COLUMN c FROM t DEFAULT <expr>
            RENAME COLUMN c IN t TO d
            DECOMPOSE TABLE t INTO r(a,..)[, s(b,..)] ON PK|FOREIGN KEY fk|<cond>
            [OUTER] JOIN TABLE r, s INTO t ON PK|FOREIGN KEY fk|<cond>
            SPLIT TABLE t INTO r WITH <cond> [, s WITH <cond>]
            MERGE TABLE r (<cond>), s (<cond>) INTO t
  DROP SCHEMA VERSION <v>;
  MATERIALIZE '<version>' | '<version>.<table>', ...;
  any SQL: SELECT/INSERT/UPDATE/DELETE ... FROM <version>.<table>
Meta commands: .help  .catalog  .versions  .smos  .quit|}

let is_bidel sql =
  let up = String.uppercase_ascii (String.trim sql) in
  let starts p =
    String.length up >= String.length p && String.sub up 0 (String.length p) = p
  in
  starts "CREATE SCHEMA" || starts "DROP SCHEMA" || starts "MATERIALIZE"

let print_relation (rel : Minidb.Exec.relation) =
  Fmt.pr "%s@." (String.concat " | " rel.Minidb.Exec.rel_cols);
  List.iter
    (fun row ->
      Fmt.pr "%s@."
        (String.concat " | " (Array.to_list (Array.map Minidb.Value.to_string row))))
    rel.Minidb.Exec.rel_rows;
  Fmt.pr "(%d rows)@." (List.length rel.Minidb.Exec.rel_rows)

let execute t input =
  try
    if is_bidel input then begin
      I.evolve t input;
      Fmt.pr "ok@."
    end
    else
      match Minidb.Engine.exec (I.database t) input with
      | Minidb.Exec.Rows rel -> print_relation rel
      | Minidb.Exec.Affected n -> Fmt.pr "%d rows affected@." n
      | Minidb.Exec.Done -> Fmt.pr "ok@."
  with
  | Minidb.Sql_lexer.Cursor.Parse_error msg -> Fmt.pr "parse error: %s@." msg
  | Minidb.Sql_lexer.Lex_error (msg, _) -> Fmt.pr "lex error: %s@." msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Inverda.Migration.Migration_error msg ->
    Fmt.pr "error: %s@." msg
  | Analysis.Diagnostic.Rejected ds ->
    Fmt.pr "rejected by the static analyzer:@.";
    Analysis.Diagnostic.report Fmt.stdout ds
  | Minidb.Table.Constraint_violation msg -> Fmt.pr "constraint violation: %s@." msg
  | Minidb.Value.Type_error msg -> Fmt.pr "type error: %s@." msg
  | Bidel.Smo_semantics.Semantics_error msg -> Fmt.pr "SMO error: %s@." msg

let meta t line =
  match String.trim line with
  | ".help" -> Fmt.pr "%s@." help_text
  | ".catalog" -> Fmt.pr "%s@." (I.describe t)
  | ".versions" ->
    List.iter
      (fun v ->
        Fmt.pr "%s: %s@." v (String.concat ", " (I.version_tables t v)))
      (I.versions t)
  | ".smos" ->
    List.iter
      (fun (si : Inverda.Genealogy.smo_instance) ->
        Fmt.pr "#%d %s (%s)@." si.Inverda.Genealogy.si_id
          (Bidel.Printer.smo_to_string si.Inverda.Genealogy.si_smo)
          (if si.Inverda.Genealogy.si_materialized then "materialized"
           else "virtualized"))
      (Inverda.Genealogy.all_smos (I.genealogy t))
  | ".quit" | ".exit" -> exit 0
  | other -> Fmt.pr "unknown meta command %s (try .help)@." other

let repl t =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    Fmt.pr "InVerDa shell — co-existing schema versions (type .help)@.";
    Fmt.pr "inverda> %!"
  end;
  let buf = Buffer.create 256 in
  try
    while true do
      let line = input_line stdin in
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[0] = '.' && Buffer.length buf = 0
      then meta t trimmed
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        (* a statement ends when the buffered input ends with ';' *)
        let s = String.trim (Buffer.contents buf) in
        if String.length s > 0 && s.[String.length s - 1] = ';' then begin
          Buffer.clear buf;
          execute t s
        end
      end;
      if interactive then Fmt.pr "inverda> %!"
    done
  with End_of_file ->
    let rest = String.trim (Buffer.contents buf) in
    if rest <> "" then execute t rest

let run demo no_cache =
  let t = I.create () in
  if no_cache then I.set_cache t false;
  if demo then begin
    I.evolve t Scenarios.Tasky.bidel_initial;
    Scenarios.Tasky.load_tasks t 20;
    I.evolve t Scenarios.Tasky.bidel_do;
    I.evolve t Scenarios.Tasky.bidel_tasky2;
    Fmt.pr "loaded the TasKy demo: versions %s@."
      (String.concat ", " (I.versions t))
  end;
  repl t;
  0

(* --- the lint command ------------------------------------------------------- *)

let read_script path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_text path In_channel.input_all

(* Replay the script on a scratch instance and collect the deeper layers'
   diagnostics: rule-set safety for every instantiated SMO, plus the
   typechecked delta code of the final state. *)
let deep_diagnostics src =
  let t = I.create ~strict:false () in
  match I.evolve t src with
  | () -> I.rule_diagnostics t @ I.delta_diagnostics t
  | exception e ->
    [
      Analysis.Diagnostic.error "IVD000" "script replay failed: %s"
        (match e with
        | Inverda.Genealogy.Catalog_error m
        | Inverda.Migration.Migration_error m
        | Minidb.Database.Engine_error m
        | Minidb.Exec.Exec_error m
        | Bidel.Smo_semantics.Semantics_error m ->
          m
        | e -> Printexc.to_string e);
    ]

let lint file json shallow deny_warnings =
  match read_script file with
  | exception Sys_error msg ->
    Fmt.epr "%s@." msg;
    2
  | src ->
    let script = Analysis.lint_source src in
    (* replaying an erroneous script would only duplicate its findings *)
    let deep =
      if shallow || Analysis.Diagnostic.has_errors script then []
      else deep_diagnostics src
    in
    let all = script @ deep in
    if json then print_endline (Analysis.Diagnostic.list_to_json all)
    else begin
      Analysis.Diagnostic.report Fmt.stdout all;
      if all = [] then Fmt.pr "no diagnostics@."
    end;
    if Analysis.Diagnostic.has_errors all || (deny_warnings && all <> []) then 1
    else 0

open Cmdliner

let demo =
  let doc = "Preload the TasKy example (three schema versions, 20 tasks)." in
  Arg.(value & flag & info [ "demo" ] ~doc)

let no_cache =
  let doc =
    "Disable the cross-statement view-result cache (every read re-evaluates \
     the delta-view stack)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let shell_term = Term.(const run $ demo $ no_cache)

let shell_cmd =
  let doc = "Interactive shell (the default command)" in
  Cmd.v (Cmd.info "shell" ~doc) shell_term

let lint_cmd =
  let file =
    let doc = "BiDEL script to lint ($(b,-) reads standard input)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let json =
    let doc = "Emit diagnostics as a JSON array." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let shallow =
    let doc =
      "Script lints only: skip replaying the script to check Datalog rule \
       safety and typecheck the generated delta code."
    in
    Arg.(value & flag & info [ "shallow" ] ~doc)
  in
  let deny_warnings =
    let doc = "Exit non-zero on warnings too (for CI gates)." in
    Arg.(value & flag & info [ "deny-warnings" ] ~doc)
  in
  let doc = "Statically analyze a BiDEL evolution script" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses the script and reports coded diagnostics: evolution-script \
         lints ($(b,BDL0xx)), Datalog rule safety violations ($(b,DLG0xx)) \
         and delta-code type errors ($(b,IVD0xx)), each with its source \
         location where available. Exits non-zero when any error-severity \
         diagnostic is reported; warnings alone exit zero unless \
         $(b,--deny-warnings) is given.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(const lint $ file $ json $ shallow $ deny_warnings)

let cmd =
  let doc = "Co-existing schema versions: shell and static analyzer" in
  Cmd.group ~default:shell_term (Cmd.info "inverda" ~doc) [ shell_cmd; lint_cmd ]

let () = exit (Cmd.eval' cmd)
