(* Interactive InVerDa shell: BiDEL evolution statements, the MATERIALIZE
   migration command, and plain SQL against any "version.table" view, all in
   one REPL.

     dune exec bin/inverda_cli.exe            # interactive
     dune exec bin/inverda_cli.exe -- --demo  # pre-load the TasKy example
     echo "script" | dune exec bin/inverda_cli.exe

   Statements end with ';'. Meta commands: .help .catalog .versions .smos
   .quit *)

module I = Inverda.Api

let help_text =
  {|Statements (end with ';'):
  CREATE SCHEMA VERSION <v> [FROM <v0>] WITH <smo>; <smo>; ...
      SMOs: CREATE TABLE t(a,b) | DROP TABLE t | RENAME TABLE t INTO u
            ADD COLUMN c AS <expr> INTO t | DROP COLUMN c FROM t DEFAULT <expr>
            RENAME COLUMN c IN t TO d
            DECOMPOSE TABLE t INTO r(a,..)[, s(b,..)] ON PK|FOREIGN KEY fk|<cond>
            [OUTER] JOIN TABLE r, s INTO t ON PK|FOREIGN KEY fk|<cond>
            SPLIT TABLE t INTO r WITH <cond> [, s WITH <cond>]
            MERGE TABLE r (<cond>), s (<cond>) INTO t
  DROP SCHEMA VERSION <v>;
  MATERIALIZE '<version>' | '<version>.<table>', ...;
  any SQL: SELECT/INSERT/UPDATE/DELETE ... FROM <version>.<table>
Meta commands: .help  .catalog  .versions  .smos  .quit|}

let is_bidel sql =
  let up = String.uppercase_ascii (String.trim sql) in
  let starts p =
    String.length up >= String.length p && String.sub up 0 (String.length p) = p
  in
  starts "CREATE SCHEMA" || starts "DROP SCHEMA" || starts "MATERIALIZE"

let print_relation (rel : Minidb.Exec.relation) =
  Fmt.pr "%s@." (String.concat " | " rel.Minidb.Exec.rel_cols);
  List.iter
    (fun row ->
      Fmt.pr "%s@."
        (String.concat " | " (Array.to_list (Array.map Minidb.Value.to_string row))))
    rel.Minidb.Exec.rel_rows;
  Fmt.pr "(%d rows)@." (List.length rel.Minidb.Exec.rel_rows)

let execute t input =
  try
    if is_bidel input then begin
      I.evolve t input;
      Fmt.pr "ok@."
    end
    else
      match Minidb.Engine.exec (I.database t) input with
      | Minidb.Exec.Rows rel -> print_relation rel
      | Minidb.Exec.Affected n -> Fmt.pr "%d rows affected@." n
      | Minidb.Exec.Done -> Fmt.pr "ok@."
  with
  | Minidb.Sql_lexer.Cursor.Parse_error msg -> Fmt.pr "parse error: %s@." msg
  | Minidb.Sql_lexer.Lex_error (msg, _) -> Fmt.pr "lex error: %s@." msg
  | Minidb.Database.Engine_error msg
  | Minidb.Exec.Exec_error msg
  | Inverda.Genealogy.Catalog_error msg
  | Inverda.Migration.Migration_error msg ->
    Fmt.pr "error: %s@." msg
  | Minidb.Table.Constraint_violation msg -> Fmt.pr "constraint violation: %s@." msg
  | Minidb.Value.Type_error msg -> Fmt.pr "type error: %s@." msg
  | Bidel.Smo_semantics.Semantics_error msg -> Fmt.pr "SMO error: %s@." msg

let meta t line =
  match String.trim line with
  | ".help" -> Fmt.pr "%s@." help_text
  | ".catalog" -> Fmt.pr "%s@." (I.describe t)
  | ".versions" ->
    List.iter
      (fun v ->
        Fmt.pr "%s: %s@." v (String.concat ", " (I.version_tables t v)))
      (I.versions t)
  | ".smos" ->
    List.iter
      (fun (si : Inverda.Genealogy.smo_instance) ->
        Fmt.pr "#%d %s (%s)@." si.Inverda.Genealogy.si_id
          (Bidel.Printer.smo_to_string si.Inverda.Genealogy.si_smo)
          (if si.Inverda.Genealogy.si_materialized then "materialized"
           else "virtualized"))
      (Inverda.Genealogy.all_smos (I.genealogy t))
  | ".quit" | ".exit" -> exit 0
  | other -> Fmt.pr "unknown meta command %s (try .help)@." other

let repl t =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    Fmt.pr "InVerDa shell — co-existing schema versions (type .help)@.";
    Fmt.pr "inverda> %!"
  end;
  let buf = Buffer.create 256 in
  try
    while true do
      let line = input_line stdin in
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[0] = '.' && Buffer.length buf = 0
      then meta t trimmed
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        (* a statement ends when the buffered input ends with ';' *)
        let s = String.trim (Buffer.contents buf) in
        if String.length s > 0 && s.[String.length s - 1] = ';' then begin
          Buffer.clear buf;
          execute t s
        end
      end;
      if interactive then Fmt.pr "inverda> %!"
    done
  with End_of_file ->
    let rest = String.trim (Buffer.contents buf) in
    if rest <> "" then execute t rest

let run demo =
  let t = I.create () in
  if demo then begin
    I.evolve t Scenarios.Tasky.bidel_initial;
    Scenarios.Tasky.load_tasks t 20;
    I.evolve t Scenarios.Tasky.bidel_do;
    I.evolve t Scenarios.Tasky.bidel_tasky2;
    Fmt.pr "loaded the TasKy demo: versions %s@."
      (String.concat ", " (I.versions t))
  end;
  repl t

open Cmdliner

let demo =
  let doc = "Preload the TasKy example (three schema versions, 20 tasks)." in
  Arg.(value & flag & info [ "demo" ] ~doc)

let cmd =
  let doc = "Interactive shell for co-existing schema versions" in
  Cmd.v (Cmd.info "inverda" ~doc) Term.(const run $ demo)

let () = exit (Cmd.eval cmd)
