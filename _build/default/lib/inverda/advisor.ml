(** Materialization advisor — the paper notes that "an advisor tool
    supporting the optimization task is very well imaginable" (Section 8.2);
    this is that tool.

    Given a workload profile (relative access weight per schema version), the
    advisor scores every valid materialization schema and recommends the one
    minimizing the expected propagation distance. The cost model follows the
    observation behind Figures 11-13: every SMO hop between an accessed table
    version and the physical data adds roughly constant relative overhead,
    with forward propagation (reading newer data from an older version)
    slightly cheaper than backward. *)

module G = Genealogy

type profile = (string * float) list
(** schema version name -> relative access weight *)

(** Number of SMO hops from [tv] to its data under materialization [mat],
    weighted by direction. *)
let rec distance (gen : G.t) mat tvid =
  let v = G.tv gen tvid in
  let is_mat id = List.mem id mat in
  match List.find_opt is_mat v.G.tv_out with
  | Some o ->
    (* data lies forward: propagate through o to any of its targets *)
    let si = G.smo gen o in
    let best =
      List.fold_left
        (fun acc t -> min acc (distance gen mat t))
        max_float si.G.si_target_tvs
    in
    1.0 +. best
  | None -> (
    match v.G.tv_in with
    | None -> 0.0
    | Some i ->
      if is_mat i then 0.0
      else begin
        (* data lies backward through the incoming SMO; backward reads are a
           bit cheaper on average (cf. the Figure 12 asymmetry) *)
        let si = G.smo gen i in
        let best =
          List.fold_left
            (fun acc s -> min acc (distance gen mat s))
            max_float si.G.si_source_tvs
        in
        0.8 +. best
      end)

(** Expected cost of [profile] under materialization [mat]. *)
let cost (gen : G.t) mat (profile : profile) =
  List.fold_left
    (fun acc (version, weight) ->
      match G.find_version gen version with
      | None -> acc
      | Some sv ->
        let version_cost =
          List.fold_left
            (fun c (_, tvid) -> c +. distance gen mat tvid)
            0.0 sv.G.sv_tables
        in
        acc +. (weight *. version_cost))
    0.0 profile

type recommendation = {
  materialization : int list;  (** SMO ids to materialize *)
  estimated_cost : float;
  alternatives : (int list * float) list;  (** all candidates, best first *)
}

(** Score every valid materialization schema for the profile. *)
let advise (gen : G.t) (profile : profile) =
  let candidates = G.enumerate_materializations gen in
  let scored =
    List.map (fun mat -> (mat, cost gen mat profile)) candidates
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  match scored with
  | [] -> None
  | (best, c) :: _ ->
    Some { materialization = best; estimated_cost = c; alternatives = scored }

(** Convenience: advise and migrate in one step; returns true if the
    materialization changed. *)
let advise_and_migrate db (gen : G.t) profile =
  match advise gen profile with
  | None -> false
  | Some r ->
    let current = G.current_materialization gen in
    if current = r.materialization then false
    else begin
      Migration.set_materialization db gen r.materialization;
      true
    end
