lib/inverda/migration.mli: Genealogy Minidb
