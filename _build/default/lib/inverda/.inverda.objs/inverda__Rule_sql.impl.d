lib/inverda/rule_sql.ml: Datalog Fmt Hashtbl List Minidb Option
