lib/inverda/naming.ml: Fmt Minidb
