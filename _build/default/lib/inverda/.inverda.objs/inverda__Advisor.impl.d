lib/inverda/advisor.ml: Genealogy List Migration
