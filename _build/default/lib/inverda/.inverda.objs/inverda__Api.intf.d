lib/inverda/api.mli: Bidel Genealogy Minidb
