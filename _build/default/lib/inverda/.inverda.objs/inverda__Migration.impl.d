lib/inverda/migration.ml: Bidel Codegen Fmt Genealogy List Minidb Naming String
