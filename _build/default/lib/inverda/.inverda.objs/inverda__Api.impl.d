lib/inverda/api.ml: Bidel Buffer Codegen Datalog Fmt Genealogy List Migration Minidb Naming Rule_sql String
