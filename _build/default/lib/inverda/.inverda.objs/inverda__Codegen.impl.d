lib/inverda/codegen.ml: Bidel Genealogy Hashtbl List Minidb Naming Option Rule_sql Triggers
