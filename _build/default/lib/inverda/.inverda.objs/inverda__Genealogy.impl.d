lib/inverda/genealogy.ml: Bidel Fmt Hashtbl List Naming
