lib/inverda/rule_sql.mli: Datalog Format Minidb
