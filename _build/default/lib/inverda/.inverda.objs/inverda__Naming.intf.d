lib/inverda/naming.mli: Minidb
