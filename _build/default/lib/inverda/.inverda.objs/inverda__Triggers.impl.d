lib/inverda/triggers.ml: Bidel Fmt List Minidb Option Rule_sql String
