lib/inverda/advisor.mli: Genealogy Minidb
