lib/inverda/genealogy.mli: Bidel Hashtbl
