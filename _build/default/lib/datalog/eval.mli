(** Naive bottom-up evaluation of non-recursive Datalog rule sets with
    stratified negation — the semantics oracle for the SMO mapping functions:
    the generated SQL delta code must compute exactly what this evaluator
    computes on the same extensional database. *)

type edb = (string * Minidb.Value.t array list) list
(** Extensional database: predicate name to tuples. *)

exception Eval_error of string

val stratify : Ast.t -> string list
(** Topological order of the head predicates; raises {!Eval_error} on
    recursion (SMO rule sets never recurse — the genealogy is acyclic). *)

val eval : ?engine:Minidb.Database.t -> Ast.t -> edb -> edb
(** Evaluate the rule set bottom-up; returns the derived relations of every
    head predicate. [engine] supplies registered functions (the memoized
    skolem identifier generators) for condition/assignment evaluation. *)

val eval_pred : ?engine:Minidb.Database.t -> Ast.t -> edb -> string -> Minidb.Value.t array list
(** Evaluate and project one predicate. *)

val same_tuples : Minidb.Value.t array list -> Minidb.Value.t array list -> bool
(** Set equality of tuple collections. *)
