(** Pretty-printing of Datalog rules in the paper's notation:
    [head(args) <- lit, ..., lit] with [not] for negation. *)

val pp_term : Format.formatter -> Ast.term -> unit

val pp_atom : Format.formatter -> Ast.atom -> unit

val pp_literal : Format.formatter -> Ast.literal -> unit

val pp_rule : Format.formatter -> Ast.rule -> unit

val pp_rules : Format.formatter -> Ast.t -> unit

val rule_to_string : Ast.rule -> string

val rules_to_string : Ast.t -> string
