lib/datalog/simplify.mli: Ast Minidb
