lib/datalog/simplify.ml: Array Ast Eval Fmt List Minidb Option
