lib/datalog/pretty.mli: Ast Format
