lib/datalog/eval.ml: Array Ast Fmt Hashtbl List Minidb Option
