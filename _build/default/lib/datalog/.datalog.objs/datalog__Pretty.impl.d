lib/datalog/pretty.ml: Ast Fmt Minidb
