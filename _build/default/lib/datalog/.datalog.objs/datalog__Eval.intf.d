lib/datalog/eval.mli: Ast Minidb
