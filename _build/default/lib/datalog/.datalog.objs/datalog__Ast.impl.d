lib/datalog/ast.ml: Fmt List Minidb
