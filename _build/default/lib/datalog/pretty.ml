(** Pretty-printing of Datalog rules in the paper's notation. *)

open Ast

let pp_term ppf = function
  | Var x -> Fmt.string ppf x
  | Cst v -> Fmt.string ppf (Minidb.Value.to_literal v)
  | Anon -> Fmt.string ppf "_"

let pp_atom ppf a =
  Fmt.pf ppf "%s(%a)" a.pred (Fmt.list ~sep:(Fmt.any ", ") pp_term) a.args

let pp_literal ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Fmt.pf ppf "not %a" pp_atom a
  | Cond e -> Fmt.string ppf (Minidb.Sql_printer.expr_to_string e)
  | Assign (x, e) ->
    Fmt.pf ppf "%s = %s" x (Minidb.Sql_printer.expr_to_string e)

let pp_rule ppf r =
  Fmt.pf ppf "%a <- %a" pp_atom r.head
    (Fmt.list ~sep:(Fmt.any ", ") pp_literal)
    r.body

let pp_rules ppf rules =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_rule) rules

let rule_to_string = Fmt.str "%a" pp_rule

let rules_to_string = Fmt.str "%a" pp_rules
