(** Datalog rules as used by the paper to define SMO semantics.

    Rule templates in the paper quantify over attribute *lists* (capital
    variables); here rules are already instantiated for a concrete SMO
    instance, so every variable stands for a single attribute. By the paper's
    convention the first argument of every predicate is the InVerDa-managed
    key [p], which is unique per relation (Lemma 5).

    Conditions and computed values reuse the SQL expression language
    ({!Minidb.Sql_ast.expr}) with [Col (None, v)] denoting the rule variable
    [v]; this makes the later Datalog-to-SQL translation (Figure 7 of the
    paper) a structural embedding. *)

type term = Var of string | Cst of Minidb.Value.t | Anon

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cond of Minidb.Sql_ast.expr
      (** condition over rule variables, e.g. [prio = 1] *)
  | Assign of string * Minidb.Sql_ast.expr
      (** [v := f(...)], used for ADD COLUMN value functions and the
          identifier-generating skolem functions of DECOMPOSE/JOIN *)

type rule = { head : atom; body : literal list }

type t = rule list

let atom pred args = { pred; args }

let rule head body = { head; body }

(* --- convenience constructors ------------------------------------------- *)

let v name = Var name

let vars names = List.map (fun n -> Var n) names

let col name : Minidb.Sql_ast.expr = Minidb.Sql_ast.Col (None, name)

let eq a b : Minidb.Sql_ast.expr = Minidb.Sql_ast.(Binop (Eq, a, b))

let conj = function
  | [] -> Minidb.Sql_ast.Const (Minidb.Value.Bool true)
  | e :: rest ->
    List.fold_left (fun acc x -> Minidb.Sql_ast.(Binop (And, acc, x))) e rest

(* --- variable accounting -------------------------------------------------- *)

let rec expr_vars (e : Minidb.Sql_ast.expr) =
  match e with
  | Col (None, n) -> [ n ]
  | Col (Some _, _) | Const _ | Param _ -> []
  | Unop (_, a) | Is_null (a, _) -> expr_vars a
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Fun (_, args) -> List.concat_map expr_vars args
  | Case (arms, default) ->
    List.concat_map (fun (c, x) -> expr_vars c @ expr_vars x) arms
    @ (match default with Some d -> expr_vars d | None -> [])
  | In_list (a, items, _) -> expr_vars a @ List.concat_map expr_vars items
  | Exists _ | In_query _ | Scalar _ -> []

let term_vars = function Var x -> [ x ] | Cst _ | Anon -> []

let atom_vars a = List.concat_map term_vars a.args

let literal_vars = function
  | Pos a | Neg a -> atom_vars a
  | Cond e -> expr_vars e
  | Assign (x, e) -> x :: expr_vars e

let rule_vars r =
  List.sort_uniq compare (atom_vars r.head @ List.concat_map literal_vars r.body)

(** Positive (binding) variables of a body. *)
let bound_vars body =
  List.concat_map
    (function Pos a -> atom_vars a | Assign (x, _) -> [ x ] | Neg _ | Cond _ -> [])
    body

(** Predicates appearing in bodies / heads of a rule set. *)
let body_preds rules =
  List.concat_map
    (fun r ->
      List.filter_map
        (function Pos a | Neg a -> Some a.pred | Cond _ | Assign _ -> None)
        r.body)
    rules
  |> List.sort_uniq compare

let head_preds rules =
  List.map (fun r -> r.head.pred) rules |> List.sort_uniq compare

(** Range-restriction / safety check: every head and condition variable must
    be bound by a positive literal or an assignment, and assignments must
    only use bound variables. Raises [Failure] with a message otherwise. *)
let check_safety rules =
  List.iter
    (fun r ->
      let bound = ref [] in
      List.iter
        (fun l ->
          match l with
          | Pos a -> bound := atom_vars a @ !bound
          | Assign (x, e) ->
            List.iter
              (fun y ->
                if not (List.mem y !bound) then
                  failwith
                    (Fmt.str "unsafe assignment to %s: %s unbound in rule for %s"
                       x y r.head.pred))
              (expr_vars e);
            bound := x :: !bound
          | Neg _ | Cond _ -> ())
        r.body;
      List.iter
        (fun l ->
          match l with
          | Neg a | Pos a ->
            ignore a (* negated atoms may introduce anonymous args only *)
          | Cond e ->
            List.iter
              (fun y ->
                if not (List.mem y !bound) then
                  failwith
                    (Fmt.str "unsafe condition variable %s in rule for %s" y
                       r.head.pred))
              (expr_vars e)
          | Assign _ -> ())
        r.body;
      List.iter
        (fun y ->
          if not (List.mem y !bound) then
            failwith (Fmt.str "unsafe head variable %s in rule for %s" y r.head.pred))
        (atom_vars r.head))
    rules;
  rules
