(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t = { columns : column list }

exception Schema_error of string

let error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let make columns =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = String.lowercase_ascii c.name in
      if Hashtbl.mem seen key then error "duplicate column %s" c.name;
      Hashtbl.add seen key ())
    columns;
  { columns }

let column name ty = { name; ty }

let names t = List.map (fun c -> c.name) t.columns

let arity t = List.length t.columns

let mem t name =
  List.exists
    (fun c -> String.lowercase_ascii c.name = String.lowercase_ascii name)
    t.columns

(** Position of [name] in the schema, case-insensitively. *)
let index t name =
  let lname = String.lowercase_ascii name in
  let rec go i = function
    | [] -> error "no such column %s" name
    | c :: _ when String.lowercase_ascii c.name = lname -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let find t name = List.nth t.columns (index t name)

let pp ppf t =
  Fmt.pf ppf "(%a)"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c ->
         Fmt.pf ppf "%s %s" c.name (Value.ty_name c.ty)))
    t.columns
