(** Table schemas: ordered, named, typed columns. Column names are compared
    case-insensitively throughout the engine. *)

type column = { name : string; ty : Value.ty }

type t = { columns : column list }

exception Schema_error of string

val make : column list -> t
(** Raises {!Schema_error} on duplicate column names. *)

val column : string -> Value.ty -> column

val names : t -> string list

val arity : t -> int

val mem : t -> string -> bool

val index : t -> string -> int
(** Position of a column; raises {!Schema_error} if absent. *)

val find : t -> string -> column

val pp : Format.formatter -> t -> unit
