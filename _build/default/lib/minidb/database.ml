(** Database catalog: tables, views, triggers, sequences and registered
    scalar functions, plus the statement-level undo log. Execution lives in
    {!Exec}; this module only manages state. *)

type view = { view_name : string; query : Sql_ast.query; view_cols : string list }

type trigger = {
  trig_name : string;
  event : Sql_ast.trigger_event;
  target : string;  (** lowercase object name *)
  instead_of : bool;
  body : Sql_ast.statement list;
}

type obj = Obj_table of Table.t | Obj_view of view

type undo_entry =
  | U_insert of Table.t * int
  | U_delete of Table.t * int * Value.t array
  | U_update of Table.t * int * Value.t array
  | U_sequence of int ref * int

type t = {
  objects : (string, obj) Hashtbl.t;  (** lowercase name -> object *)
  triggers : (string, trigger) Hashtbl.t;  (** lowercase trigger name *)
  by_target : (string * Sql_ast.trigger_event, trigger) Hashtbl.t;
  functions : (string, t -> Value.t list -> Value.t) Hashtbl.t;
  sequences : (string, int ref) Hashtbl.t;
  mutable undo : undo_entry list;  (** current statement/transaction log *)
  mutable in_txn : bool;
  mutable trigger_depth : int;
  mutable statements_executed : int;  (** lifetime statement counter *)
  mutable optimizations : bool;
      (** planner fast paths (index probes, view pushdown, index
          nested-loop joins); disabling them is used by the ablation
          benchmarks only *)
}

exception Engine_error of string

let error fmt = Fmt.kstr (fun s -> raise (Engine_error s)) fmt

let key name = String.lowercase_ascii name

let create () =
  {
    objects = Hashtbl.create 64;
    triggers = Hashtbl.create 64;
    by_target = Hashtbl.create 64;
    functions = Hashtbl.create 8;
    sequences = Hashtbl.create 8;
    undo = [];
    in_txn = false;
    trigger_depth = 0;
    statements_executed = 0;
    optimizations = true;
  }

let find_object t name = Hashtbl.find_opt t.objects (key name)

let find_table t name =
  match find_object t name with
  | Some (Obj_table tbl) -> tbl
  | Some (Obj_view _) -> error "%s is a view, not a table" name
  | None -> error "no such table %s" name

let find_table_opt t name =
  match find_object t name with Some (Obj_table tbl) -> Some tbl | _ -> None

let find_view_opt t name =
  match find_object t name with Some (Obj_view v) -> Some v | _ -> None

let object_exists t name = Hashtbl.mem t.objects (key name)

let create_table t ~name ~schema ~pk ~if_not_exists =
  if object_exists t name then begin
    if not if_not_exists then error "object %s already exists" name
  end
  else
    Hashtbl.replace t.objects (key name)
      (Obj_table (Table.create ~name ~schema ~pk))

let drop_triggers_of_target t target_key =
  let stale =
    Hashtbl.fold
      (fun name trig acc -> if trig.target = target_key then name :: acc else acc)
      t.triggers []
  in
  List.iter
    (fun name ->
      let trig = Hashtbl.find t.triggers name in
      Hashtbl.remove t.triggers name;
      Hashtbl.remove t.by_target (trig.target, trig.event))
    stale

let drop_table t ~name ~if_exists =
  match find_object t name with
  | Some (Obj_table _) ->
    Hashtbl.remove t.objects (key name);
    drop_triggers_of_target t (key name)
  | Some (Obj_view _) -> error "%s is a view; use DROP VIEW" name
  | None -> if not if_exists then error "no such table %s" name

let create_view t ~name ~query ~cols ~or_replace =
  (match find_object t name with
  | Some (Obj_table _) -> error "object %s already exists as a table" name
  | Some (Obj_view _) when not or_replace -> error "view %s already exists" name
  | _ -> ());
  Hashtbl.replace t.objects (key name)
    (Obj_view { view_name = name; query; view_cols = cols })

let drop_view t ~name ~if_exists =
  match find_object t name with
  | Some (Obj_view _) ->
    Hashtbl.remove t.objects (key name);
    drop_triggers_of_target t (key name)
  | Some (Obj_table _) -> error "%s is a table; use DROP TABLE" name
  | None -> if not if_exists then error "no such view %s" name

let create_trigger t ~name ~event ~target ~instead_of ~body =
  if Hashtbl.mem t.triggers (key name) then error "trigger %s already exists" name;
  if not (object_exists t target) then
    error "trigger %s references unknown object %s" name target;
  let trig =
    { trig_name = name; event; target = key target; instead_of; body }
  in
  if Hashtbl.mem t.by_target (key target, event) then
    error "object %s already has a trigger for this event" target;
  Hashtbl.replace t.triggers (key name) trig;
  Hashtbl.replace t.by_target (key target, event) trig

let drop_trigger t ~name ~if_exists =
  match Hashtbl.find_opt t.triggers (key name) with
  | Some trig ->
    Hashtbl.remove t.triggers (key name);
    Hashtbl.remove t.by_target (trig.target, trig.event)
  | None -> if not if_exists then error "no such trigger %s" name

let trigger_for t ~target ~event = Hashtbl.find_opt t.by_target (key target, event)

let register_function t name f = Hashtbl.replace t.functions (key name) f

let find_function t name = Hashtbl.find_opt t.functions (key name)

let sequence t name =
  match Hashtbl.find_opt t.sequences (key name) with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.sequences (key name) r;
    r

let nextval t name =
  let r = sequence t name in
  t.undo <- U_sequence (r, !r) :: t.undo;
  incr r;
  !r

(* --- undo log ---------------------------------------------------------- *)

let log t entry = t.undo <- entry :: t.undo

let logged_insert t tbl row =
  let rowid = Table.insert tbl row in
  log t (U_insert (tbl, rowid));
  rowid

let logged_delete t tbl rowid =
  match Table.delete tbl rowid with
  | Some row ->
    log t (U_delete (tbl, rowid, row));
    true
  | None -> false

let logged_update t tbl rowid new_row =
  match Table.update tbl rowid new_row with
  | Some old_row ->
    log t (U_update (tbl, rowid, old_row));
    true
  | None -> false

let rollback_to t mark =
  let rec go entries =
    if entries != mark then
      match entries with
      | [] -> ()
      | entry :: rest ->
        (match entry with
        | U_insert (tbl, rowid) -> ignore (Table.delete tbl rowid)
        | U_delete (tbl, rowid, row) -> Table.restore tbl rowid row
        | U_update (tbl, rowid, old_row) ->
          ignore (Table.update tbl rowid old_row)
        | U_sequence (r, v) -> r := v);
        go rest
  in
  go t.undo;
  t.undo <- mark

let list_objects t =
  Hashtbl.fold (fun _ obj acc -> obj :: acc) t.objects []
  |> List.sort (fun a b ->
         let name = function
           | Obj_table tbl -> tbl.Table.name
           | Obj_view v -> v.view_name
         in
         compare (name a) (name b))
