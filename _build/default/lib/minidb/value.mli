(** Typed SQL values with three-valued comparison semantics. [Null] also
    plays the role of the paper's padding value ω used by outer joins and FK
    decomposition. *)

type t =
  | Null
  | Int of int
  | Real of float
  | Text of string
  | Bool of bool

type ty = TInt | TReal | TText | TBool

exception Type_error of string

val ty_name : ty -> string
(** SQL spelling, e.g. [INTEGER]. *)

val ty_of_string : string -> ty
(** Parse a SQL type name (accepts common synonyms); raises {!Type_error}. *)

val is_null : t -> bool

val compare_exn : t -> t -> int
(** Total order within comparable types ([Int]/[Real] compare numerically);
    raises {!Type_error} on NULL or cross-type comparisons. *)

val sql_eq : t -> t -> bool option
(** SQL equality: [None] (unknown) when either side is NULL. *)

val equal : t -> t -> bool
(** Structural equality used for keys, DISTINCT and index lookups: NULL
    equals NULL here, matching the paper's treatment of ω as a plain value. *)

val hash : t -> int

val describe : t -> string
(** The value's type name, for error messages. *)

val to_string : t -> string
(** Display form (no quoting). *)

val to_literal : t -> string
(** SQL literal form (strings quoted and escaped). *)

val pp : Format.formatter -> t -> unit

val as_int : t -> int
(** Raises {!Type_error} unless [Int]. Likewise below. *)

val as_text : t -> string

val as_bool : t -> bool

val as_float : t -> float
(** Accepts [Int] and [Real]. *)
