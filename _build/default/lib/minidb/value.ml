(** Typed SQL values with three-valued comparison semantics.

    [Null] plays the role of both SQL NULL and the paper's padding value
    [omega] used by outer joins and FK decomposition. *)

type t =
  | Null
  | Int of int
  | Real of float
  | Text of string
  | Bool of bool

type ty = TInt | TReal | TText | TBool

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let ty_name = function
  | TInt -> "INTEGER"
  | TReal -> "REAL"
  | TText -> "TEXT"
  | TBool -> "BOOLEAN"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "INTEGER" | "INT" | "BIGINT" | "SMALLINT" -> TInt
  | "REAL" | "FLOAT" | "DOUBLE" | "NUMERIC" | "DECIMAL" -> TReal
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> TText
  | "BOOLEAN" | "BOOL" -> TBool
  | other -> type_error "unknown SQL type %s" other

let is_null = function Null -> true | Int _ | Real _ | Text _ | Bool _ -> false

(* Values of distinct runtime types never compare equal; we do however treat
   Int/Real numerically so that generated arithmetic mixing both works. *)
let rec compare_exn a b =
  match a, b with
  | Null, _ | _, Null -> type_error "cannot order NULL"
  | Int x, Int y -> Stdlib.compare x y
  | Real x, Real y -> Stdlib.compare x y
  | Int x, Real y -> Stdlib.compare (float_of_int x) y
  | Real x, Int y -> Stdlib.compare x (float_of_int y)
  | Text x, Text y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | (Int _ | Real _ | Text _ | Bool _), _ ->
    ignore (compare_exn b b);
    type_error "cannot compare %s with %s" (describe a) (describe b)

and describe = function
  | Null -> "NULL"
  | Int _ -> "INTEGER"
  | Real _ -> "REAL"
  | Text _ -> "TEXT"
  | Bool _ -> "BOOLEAN"

(** SQL equality: NULL = anything is unknown (None). *)
let sql_eq a b =
  match a, b with
  | Null, _ | _, Null -> None
  | _ -> (
    match a, b with
    | Int x, Real y | Real y, Int x -> Some (float_of_int x = y)
    | _ -> Some (compare_exn a b = 0))

(** Structural equality used for keys, DISTINCT and index lookups: NULL equals
    NULL here, matching the paper's treatment of omega as a plain value. *)
let equal a b =
  match a, b with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | _ -> ( try compare_exn a b = 0 with Type_error _ -> false)

let hash = Hashtbl.hash

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Real f -> Fmt.str "%g" f
  | Text s -> s
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"

let to_literal = function
  | Text s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | v -> to_string v

let pp ppf v = Fmt.string ppf (to_string v)

let as_int = function
  | Int i -> i
  | v -> type_error "expected INTEGER, got %s" (describe v)

let as_text = function
  | Text s -> s
  | v -> type_error "expected TEXT, got %s" (describe v)

let as_bool = function
  | Bool b -> b
  | v -> type_error "expected BOOLEAN, got %s" (describe v)

let as_float = function
  | Int i -> float_of_int i
  | Real f -> f
  | v -> type_error "expected numeric, got %s" (describe v)
