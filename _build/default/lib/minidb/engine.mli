(** Convenience facade over the SQL parser and executor: run SQL text against
    a database and fetch results. This is the surface applications (and the
    InVerDa-generated delta code's consumers) use. *)

type db = Database.t

val create : unit -> db

val exec : db -> string -> Exec.result
(** Execute one SQL statement. Raises the engine's exceptions
    ({!Database.Engine_error}, {!Exec.Exec_error},
    {!Table.Constraint_violation}, parse/lex errors) on failure; a failing
    statement rolls back atomically. *)

val execf : db -> ('a, Format.formatter, unit, Exec.result) format4 -> 'a
(** [execf db fmt ...] — printf-style statement construction. Interpolated
    strings are not escaped; use {!Value.to_literal} for untrusted text. *)

val exec_script : db -> string -> int
(** Execute a ';'-separated script; returns the number of statements run. *)

val exec_ast : db -> Sql_ast.statement -> Exec.result
(** Execute a pre-built statement AST (what InVerDa's code generator does). *)

val query : db -> string -> Exec.relation
(** Run a query; raises if the statement is not a query. *)

val queryf : db -> ('a, Format.formatter, unit, Exec.relation) format4 -> 'a

val query_rows : db -> string -> Value.t list list
(** Result rows as value lists (unordered unless the query sorts). *)

val query_scalar : db -> string -> Value.t
(** First column of the single result row; raises otherwise. *)

val query_int : db -> string -> int

val affected : db -> string -> int
(** Execute DML and return the affected-row count. *)

val pp_relation : Format.formatter -> Exec.relation -> unit
