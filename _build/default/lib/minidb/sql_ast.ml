(** Abstract syntax of the SQL subset understood by the engine.

    The subset is exactly what InVerDa's generated delta code plus the
    hand-written baselines and workloads require: single-table DML, views,
    INSTEAD OF row triggers, inner/left joins, UNION [ALL], EXISTS /
    NOT EXISTS / IN subqueries, aggregates with GROUP BY, ORDER BY / LIMIT. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg

type expr =
  | Const of Value.t
  | Col of string option * string  (** [qualifier.]name *)
  | Param of string  (** NEW.x / OLD.x inside trigger bodies *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Is_null of expr * bool  (** [Is_null (e, negated)] *)
  | Fun of string * expr list
  | Case of (expr * expr) list * expr option
  | Exists of query * bool  (** [Exists (q, negated)] *)
  | In_query of expr * query * bool  (** [In_query (e, q, negated)] *)
  | In_list of expr * expr list * bool
  | Scalar of query  (** scalar subquery *)

and sel_item =
  | Star
  | Qualified_star of string
  | Sel_expr of expr * string option

and order_item = { key : expr; descending : bool }

and select = {
  distinct : bool;
  items : sel_item list;
  from : from option;
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and from =
  | From_table of string * string option  (** name, alias *)
  | From_select of query * string
  | From_join of from * join_kind * from * expr option

and join_kind = Inner | Left_outer

and query = {
  body : set_op;
  order_by : order_item list;
  limit : int option;
}

and set_op =
  | Select of select
  | Union of set_op * set_op * bool  (** [Union (a, b, all)] *)

type column_def = { col_name : string; col_ty : Value.ty; primary_key : bool }

type trigger_event = On_insert | On_update | On_delete

type statement =
  | Create_table of { name : string; if_not_exists : bool; cols : column_def list }
  | Drop_table of { name : string; if_exists : bool }
  | Create_view of { name : string; or_replace : bool; query : query }
  | Drop_view of { name : string; if_exists : bool }
  | Create_index of { name : string; table : string; column : string }
  | Create_trigger of {
      name : string;
      event : trigger_event;
      table : string;  (** view or table the trigger is attached to *)
      instead_of : bool;
      body : statement list;
    }
  | Drop_trigger of { name : string; if_exists : bool }
  | Insert of {
      table : string;
      columns : string list option;
      source : insert_source;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Query of query
  | Set_new of string * expr  (** trigger-body only: SET NEW.col = expr *)
  | Begin_txn
  | Commit
  | Rollback

and insert_source = Values of expr list list | Insert_query of query

let select_query sel = { body = Select sel; order_by = []; limit = None }

let simple_select ?(distinct = false) ?from ?where items =
  { distinct; items; from; where; group_by = []; having = None }
