lib/minidb/schema.ml: Fmt Hashtbl List String Value
