lib/minidb/engine.ml: Array Database Exec Fmt List Sql_parser Value
