lib/minidb/table.ml: Array Fmt Hashtbl List Option Schema String Value
