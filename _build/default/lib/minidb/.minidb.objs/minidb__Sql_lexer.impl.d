lib/minidb/sql_lexer.ml: Buffer Fmt List String
