lib/minidb/engine.mli: Database Exec Format Sql_ast Value
