lib/minidb/sql_parser.ml: List Sql_ast Sql_lexer String Value
