lib/minidb/sql_printer.ml: Fmt List Option Sql_ast Sql_lexer Sql_parser String Value
