lib/minidb/value.ml: Buffer Fmt Hashtbl Stdlib String
