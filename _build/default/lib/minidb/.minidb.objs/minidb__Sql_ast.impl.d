lib/minidb/sql_ast.ml: Value
