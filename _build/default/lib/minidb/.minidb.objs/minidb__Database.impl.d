lib/minidb/database.ml: Fmt Hashtbl List Sql_ast String Table Value
