lib/minidb/exec.ml: Array Database Float Fmt Fun Hashtbl List Option Schema Sql_ast String Table Value
