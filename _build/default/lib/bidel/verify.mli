(** Verification of the bidirectionality laws of Section 5,

    - condition (27): [D_src = gamma_src^data (gamma_tgt (D_src))]
    - condition (26): [D_tgt = gamma_tgt^data (gamma_src (D_tgt))]

    two ways: {e executably}, evaluating the mapping rule sets on concrete
    data with the Datalog oracle; and {e symbolically}, replaying the paper's
    Lemma 1–5 derivation (Appendix A) with a bounded small-model fallback for
    the merging steps that need disjunctive reasoning. *)

type data = (string * Minidb.Value.t array list) list

val register_skolem :
  Minidb.Database.t -> counter:int ref -> string -> unit
(** Register a memoized identifier-generating function (equal payloads get
    equal identifiers; the counter is never rolled back). *)

val skolem_name : string -> string
(** Standard skolem naming for stand-alone instantiations: ["sk!<kind>"]. *)

val test_engine : unit -> Minidb.Database.t
(** An engine with the standard skolems registered. *)

(** {1 Executable round trips} *)

val roundtrip_src :
  ?engine:Minidb.Database.t -> Smo_semantics.instance -> data -> data * data
(** Condition (27): source data through gamma_tgt and back; returns
    (expected, actual) per source data table. Identifier auxiliaries are
    backfilled first, mirroring InVerDa's eager maintenance. *)

val roundtrip_tgt :
  ?engine:Minidb.Database.t -> Smo_semantics.instance -> data -> data * data
(** Condition (26). *)

type report = { ok : bool; expected : data; actual : data }

val check_src :
  ?engine:Minidb.Database.t -> Smo_semantics.instance -> data -> report

val check_tgt :
  ?engine:Minidb.Database.t -> Smo_semantics.instance -> data -> report

val report_to_string : report -> string

val equal_data : data -> data -> bool

(** {1 Symbolic verification} *)

type symbolic_result =
  | Identity of string
      (** the composition is the identity mapping; the payload names the
          method ("lemma simplification" or "bounded model check (...)") *)
  | Residual of string  (** the simplified rules that remained *)
  | Skipped of string
      (** identifier-generating SMOs argue via sequential state, as in the
          paper; they are verified executably instead *)

val symbolic_src : Smo_semantics.instance -> symbolic_result
(** Mechanize condition (27): compose [gamma_src] after [gamma_tgt] with the
    source side stored and auxiliaries empty, simplify with Lemmas 1–5, and
    check identity (exact or modulo the ω-convention). *)

val symbolic_tgt : Smo_semantics.instance -> symbolic_result
(** Mechanize condition (26). *)
