(** Code-size metrics for Table 3 of the paper: lines of code, statements and
    characters (consecutive whitespace counted as one, as in the paper). *)

type t = { lines : int; statements : int; characters : int }

val measure : string -> t
(** Measure a BiDEL or SQL script. Lines exclude blanks and [--] comment
    lines; statements are non-empty ';'-separated chunks. *)

val ratio : int -> int -> float
(** [ratio a b] = a/b as a float (infinity for b = 0). *)

val pp : Format.formatter -> t -> unit
