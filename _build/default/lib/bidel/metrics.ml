(** Code-size metrics for Table 3 of the paper: lines of code, statements and
    characters (consecutive whitespace counted as one character, as in the
    paper) of BiDEL and SQL scripts. *)

type t = { lines : int; statements : int; characters : int }

let count_characters s =
  let n = String.length s in
  let rec go i in_ws acc =
    if i >= n then acc
    else
      let c = s.[i] in
      let ws = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
      if ws then go (i + 1) true (if in_ws then acc else acc + 1)
      else go (i + 1) false (acc + 1)
  in
  (* leading/trailing whitespace ignored *)
  go 0 true 0

let count_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         let t = String.trim line in
         t <> "" && not (String.length t >= 2 && t.[0] = '-' && t.[1] = '-'))
  |> List.length

(** Statements are ';'-separated chunks with actual content. *)
let count_statements s =
  (* strip line comments first *)
  let comment_start line =
    let n = String.length line in
    let rec go i =
      if i + 1 >= n then None
      else if line.[i] = '-' && line.[i + 1] = '-' then Some i
      else go (i + 1)
    in
    go 0
  in
  let without_comments =
    String.split_on_char '\n' s
    |> List.map (fun line ->
           match comment_start line with
           | Some i -> String.sub line 0 i
           | None -> line)
    |> String.concat "\n"
  in
  String.split_on_char ';' without_comments
  |> List.filter (fun chunk -> String.trim chunk <> "")
  |> List.length

let measure s =
  { lines = count_lines s; statements = count_statements s; characters = count_characters s }

let ratio a b =
  if b = 0 then Float.infinity else float_of_int a /. float_of_int b

let pp ppf m =
  Fmt.pf ppf "%d LoC, %d statements, %d characters" m.lines m.statements m.characters
