(** Pretty-printer for BiDEL producing parseable scripts; also the code the
    Table 3 size metrics measure. *)

val pp_smo : Format.formatter -> Ast.smo -> unit

val pp_statement : Format.formatter -> Ast.statement -> unit

val smo_to_string : Ast.smo -> string

val statement_to_string : Ast.statement -> string

val script_to_string : Ast.statement list -> string
