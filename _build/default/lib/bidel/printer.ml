(** Pretty-printer for BiDEL: produces parseable scripts, also used by the
    code-size metrics of Table 3. *)

open Ast

let pp_expr ppf e = Fmt.string ppf (Minidb.Sql_printer.expr_to_string e)

let pp_cols ppf cols =
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ",") Fmt.string) cols

let pp_linkage ppf = function
  | On_pk -> Fmt.string ppf "ON PK"
  | On_fk col -> Fmt.pf ppf "ON FOREIGN KEY %s" col
  | On_cond e -> Fmt.pf ppf "ON %a" pp_expr e

let pp_smo ppf = function
  | Create_table { table; columns } ->
    Fmt.pf ppf "CREATE TABLE %s%a" table pp_cols columns
  | Drop_table { table } -> Fmt.pf ppf "DROP TABLE %s" table
  | Rename_table { table; into } ->
    Fmt.pf ppf "RENAME TABLE %s INTO %s" table into
  | Rename_column { table; col; into } ->
    Fmt.pf ppf "RENAME COLUMN %s IN %s TO %s" col table into
  | Add_column { table; col; default } ->
    Fmt.pf ppf "ADD COLUMN %s AS %a INTO %s" col pp_expr default table
  | Drop_column { table; col; default } ->
    Fmt.pf ppf "DROP COLUMN %s FROM %s DEFAULT %a" col table pp_expr default
  | Decompose { table; left = lname, lcols; right; linkage } ->
    Fmt.pf ppf "DECOMPOSE TABLE %s INTO %s%a" table lname pp_cols lcols;
    (match right with
    | Some (rname, rcols) -> Fmt.pf ppf ", %s%a" rname pp_cols rcols
    | None -> ());
    Fmt.pf ppf " %a" pp_linkage linkage
  | Join { left; right; into; linkage; outer } ->
    Fmt.pf ppf "%sJOIN TABLE %s, %s INTO %s %a"
      (if outer then "OUTER " else "")
      left right into pp_linkage linkage
  | Split { table; left = lname, lcond; right } ->
    Fmt.pf ppf "SPLIT TABLE %s INTO %s WITH %a" table lname pp_expr lcond;
    (match right with
    | Some (rname, rcond) -> Fmt.pf ppf ", %s WITH %a" rname pp_expr rcond
    | None -> ())
  | Merge { left = lname, lcond; right = rname, rcond; into } ->
    Fmt.pf ppf "MERGE TABLE %s (%a), %s (%a) INTO %s" lname pp_expr lcond rname
      pp_expr rcond into

let pp_statement ppf = function
  | Create_schema_version { name; from; smos } ->
    Fmt.pf ppf "CREATE SCHEMA VERSION %s" name;
    (match from with Some f -> Fmt.pf ppf " FROM %s" f | None -> ());
    Fmt.pf ppf " WITH@.";
    List.iter (fun smo -> Fmt.pf ppf "%a;@." pp_smo smo) smos
  | Drop_schema_version name -> Fmt.pf ppf "DROP SCHEMA VERSION %s;@." name
  | Materialize targets ->
    Fmt.pf ppf "MATERIALIZE %a;@."
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf t -> Fmt.pf ppf "'%s'" t))
      targets

let smo_to_string = Fmt.str "%a" pp_smo

let statement_to_string = Fmt.str "%a" pp_statement

let script_to_string stmts = String.concat "" (List.map statement_to_string stmts)
