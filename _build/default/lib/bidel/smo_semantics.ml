(** Bidirectional semantics of BiDEL SMOs as Datalog rule templates.

    Every SMO instance is described by two mapping rule sets, following
    Section 4 and Appendix B of the paper:

    - [gamma_tgt] derives the target-side relations (target data tables plus
      target-side auxiliaries) from the source-side relations, and
    - [gamma_src] derives the source-side relations (source data tables plus
      source-side auxiliaries) from the target-side relations.

    Auxiliary tables capture what the basic mapping would lose: split twins
    ([R-], [R*], [S+], [S-], [S*]), dropped-column values ([B]), unmatched
    join partners ([L+], [R+]), archive copies of dropped tables, and the
    identifier mappings ([ID]) of FK/condition decompositions and joins.

    Two deliberate deviations from the paper's appendix, both documented in
    DESIGN.md:

    - identifier-generating skolem functions ([idT] et al.) never appear in
      the mapping rules used for views; instead the [ID] auxiliaries are kept
      total eagerly (backfilled at evolution time by the [backfill] rules and
      maintained by the write triggers). This avoids the paper's informal
      old/new-state sequencing ([To]/[Tn]) inside view definitions.
    - rows whose payload is entirely NULL on one side of a PK/FK decompose
      are treated as absent on that side (the paper's omega-padding
      convention, applied consistently).

    All relations carry the InVerDa-managed key as their first column,
    conventionally called [p]. *)

open Ast
module D = Datalog.Ast
module Sql = Minidb.Sql_ast
module Value = Minidb.Value

type rel = { rel_name : string; rel_cols : string list }
(** First column is the key. *)

type instance = {
  spec : smo;
  sources : rel list;
  targets : rel list;
  aux_src : rel list;  (** physical while the SMO is virtualized *)
  aux_tgt : rel list;  (** physical while the SMO is materialized *)
  aux_both : rel list;  (** physical in both states (pair-id tables) *)
  gamma_tgt : D.t;
  gamma_src : D.t;
  backfill : D.t;
      (** evolution-time rules populating ID auxiliaries for pre-existing
          source data; the only rules that may call skolem functions *)
  state_updates : (string * string) list;
      (** [(new_pred, state_pred)]: gamma_src derives [new_pred] as the
          updated contents of the stateful auxiliary [state_pred]
          (pair-identifier tables of condition decomposes/joins) *)
}

exception Semantics_error of string

let error fmt = Fmt.kstr (fun s -> raise (Semantics_error s)) fmt

(* --- small helpers -------------------------------------------------------- *)

let key = "p"

let pv = D.Var key

let null = D.Cst Value.Null

let _nulls n = List.init n (fun _ -> null)

let anon n = List.init n (fun _ -> D.Anon)

let atom = D.atom

let ( <-- ) head body = D.rule head body

(* Datalog negation of a condition is closed-world: "not (e is true)".
   Plain SQL NOT would drop NULL-valued conditions from both branches. *)
let sql_not e =
  Sql.Unop (Sql.Not, Sql.Fun ("COALESCE", [ e; Sql.Const (Value.Bool false) ]))

let sql_and a b = Sql.Binop (Sql.And, a, b)

let sql_or a b = Sql.Binop (Sql.Or, a, b)

let sql_col c = Sql.Col (None, c)

(** NULL-safe equality of two columns (omega is an ordinary value in the
    paper's Datalog). *)
let nullsafe_eq a b =
  sql_or
    (Sql.Binop (Sql.Eq, a, b))
    (sql_and (Sql.Is_null (a, false)) (Sql.Is_null (b, false)))

(** [payload <> omega]: at least one column is non-NULL. *)
let not_all_null cols =
  match cols with
  | [] -> D.Cond (Sql.Const (Value.Bool true))
  | c :: rest ->
    D.Cond
      (sql_not
         (List.fold_left
            (fun acc x -> sql_and acc (Sql.Is_null (sql_col x, false)))
            (Sql.Is_null (sql_col c, false))
            rest))

(** [payload = omega]: every column is NULL. *)
let all_null cols =
  match cols with
  | [] -> D.Cond (Sql.Const (Value.Bool false))
  | c :: rest ->
    D.Cond
      (List.fold_left
         (fun acc x -> sql_and acc (Sql.Is_null (sql_col x, false)))
         (Sql.Is_null (sql_col c, false))
         rest)

(** [A <> A'] over two variable lists (twin separation test). *)
let lists_differ vars vars' =
  match List.combine vars vars' with
  | [] -> D.Cond (Sql.Const (Value.Bool false))
  | (a, b) :: rest ->
    D.Cond
      (sql_not
         (List.fold_left
            (fun acc (x, y) -> sql_and acc (nullsafe_eq (sql_col x) (sql_col y)))
            (nullsafe_eq (sql_col a) (sql_col b))
            rest))

let prime v = v ^ "'"

let _rename_vars_expr mapping (e : Sql.expr) =
  let rec go e =
    match (e : Sql.expr) with
    | Sql.Col (None, c) -> (
      match List.assoc_opt (String.lowercase_ascii c) mapping with
      | Some c' -> Sql.Col (None, c')
      | None -> e)
    | Sql.Col (Some _, _) | Sql.Const _ | Sql.Param _ -> e
    | Sql.Unop (op, a) -> Sql.Unop (op, go a)
    | Sql.Binop (op, a, b) -> Sql.Binop (op, go a, go b)
    | Sql.Is_null (a, n) -> Sql.Is_null (go a, n)
    | Sql.Fun (f, args) -> Sql.Fun (f, List.map go args)
    | Sql.Case (arms, d) ->
      Sql.Case (List.map (fun (c, v) -> (go c, go v)) arms, Option.map go d)
    | Sql.In_list (a, items, n) -> Sql.In_list (go a, List.map go items, n)
    | Sql.Exists _ | Sql.In_query _ | Sql.Scalar _ -> e
  in
  go e

let skolem_call fname args = Sql.Fun (fname, List.map sql_col args)

(* --- the per-SMO templates -------------------------------------------------- *)

let empty_instance smo =
  {
    spec = smo;
    sources = [];
    targets = [];
    aux_src = [];
    aux_tgt = [];
    aux_both = [];
    gamma_tgt = [];
    gamma_src = [];
    backfill = [];
    state_updates = [];
  }

let mkrel name cols = { rel_name = name; rel_cols = key :: cols }

(* --- the DECOMPOSE family ----------------------------------------------------

   One builder covers DECOMPOSE ON PK/FK/COND and, by exchanging the two
   mapping directions, OUTER JOIN ON PK/FK/COND and the inner JOIN ON FK/COND.
   [padding] selects what happens to target-side rows without a partner when
   mapping back to the source: [`Omega] pads with NULLs (decompose / outer
   join), [`Aux] preserves them in unmatched-row auxiliaries (inner join,
   B.6's S+/T+). The result is in "decompose orientation": [sources] is the
   combined table, [targets] are the two parts. *)
let decompose_family ~smo ~table_name ~table_cols ~left:(lname, lcols)
    ~right:(rname, rcols) ~linkage ~aux_name ~skolem_name ~padding =
  let base = empty_instance smo in
  let r = mkrel table_name table_cols in
  List.iter
    (fun c ->
      if not (List.mem c table_cols) then
        error "DECOMPOSE/JOIN: column %s is not a column of the combined table" c)
    (lcols @ rcols);
  (match List.filter (fun c -> List.mem c rcols) lcols with
  | [] -> ()
  | c :: _ -> error "DECOMPOSE/JOIN: column %s assigned to both sides" c);
  let lv = D.vars lcols and rv = D.vars rcols in
  let full_args = pv :: List.map (fun c -> D.v c) table_cols in
  let padded keep_cols =
    pv :: List.map (fun c -> if List.mem c keep_cols then D.v c else null) table_cols
  in
  match linkage with
  | On_pk ->
    if List.length (lcols @ rcols) <> List.length table_cols then
      error "DECOMPOSE ON PK: the two parts must partition the columns";
    let s = mkrel lname lcols and t = mkrel rname rcols in
    let s_plus = mkrel (aux_name "lplus") lcols in
    let t_plus = mkrel (aux_name "rplus") rcols in
    let pad_src_rules =
      match padding with
      | `Omega ->
        [
          (* (136)/(137) *)
          atom r.rel_name (padded lcols)
          <-- [ D.Pos (atom s.rel_name (pv :: lv));
                D.Neg (atom t.rel_name (pv :: anon (List.length rcols))) ];
          atom r.rel_name (padded rcols)
          <-- [ D.Pos (atom t.rel_name (pv :: rv));
                D.Neg (atom s.rel_name (pv :: anon (List.length lcols))) ];
        ]
      | `Aux ->
        [
          (* (178)/(179) in join orientation *)
          atom s_plus.rel_name (pv :: lv)
          <-- [ D.Pos (atom s.rel_name (pv :: lv));
                D.Neg (atom t.rel_name (pv :: anon (List.length rcols))) ];
          atom t_plus.rel_name (pv :: rv)
          <-- [ D.Pos (atom t.rel_name (pv :: rv));
                D.Neg (atom s.rel_name (pv :: anon (List.length lcols))) ];
        ]
    in
    let pad_tgt_rules =
      match padding with
      | `Omega ->
        [
          (* (133)/(134) with the omega convention *)
          atom s.rel_name (pv :: lv)
          <-- [ D.Pos (atom r.rel_name full_args); not_all_null lcols ];
          atom t.rel_name (pv :: rv)
          <-- [ D.Pos (atom r.rel_name full_args); not_all_null rcols ];
        ]
      | `Aux ->
        [
          (* (180)-(183) in join orientation *)
          atom s.rel_name (pv :: lv) <-- [ D.Pos (atom r.rel_name full_args) ];
          atom s.rel_name (pv :: lv) <-- [ D.Pos (atom s_plus.rel_name (pv :: lv)) ];
          atom t.rel_name (pv :: rv) <-- [ D.Pos (atom r.rel_name full_args) ];
          atom t.rel_name (pv :: rv) <-- [ D.Pos (atom t_plus.rel_name (pv :: rv)) ];
        ]
    in
    {
      base with
      sources = [ r ];
      targets = [ s; t ];
      aux_src = (match padding with `Omega -> [] | `Aux -> [ s_plus; t_plus ]);
      gamma_tgt = pad_tgt_rules;
      gamma_src =
        ((* (135) / (177) *)
         atom r.rel_name full_args
         <-- [ D.Pos (atom s.rel_name (pv :: lv));
               D.Pos (atom t.rel_name (pv :: rv)) ])
        :: pad_src_rules;
    }
  | On_fk fk ->
    (* B.3: the right part is deduplicated under fresh identifiers; ID(p, fk)
       maps each combined row to its partner and is kept total eagerly. *)
    if List.mem fk lcols then
      error "DECOMPOSE ON FK: foreign key column %s clashes with a column of %s"
        fk lname;
    if List.length (lcols @ rcols) <> List.length table_cols then
      error "DECOMPOSE ON FK: the two parts must partition the columns";
    let s = mkrel lname (lcols @ [ fk ]) in
    let t = mkrel rname rcols in
    let id = mkrel (aux_name "id") [ fk ] in
    (* the fk variable must be distinct from all column variables: the fk
       column name may shadow a moved source column (the TasKy example) *)
    let fk_var = "fk!" ^ fk in
    let fkv = D.v fk_var in
    let sk = skolem_name "id" in
    let orphan_src_rules =
      match padding with
      | `Omega ->
        [
          (* (148): fk NULL means no partner *)
          atom r.rel_name (padded lcols)
          <-- [ D.Pos (atom s.rel_name ((pv :: lv) @ [ null ])) ];
          (* (149): orphans resurface omega-padded under their own id *)
          atom r.rel_name
            (fkv :: List.map (fun c -> if List.mem c rcols then D.v c else null)
                      table_cols)
          <-- [ D.Pos (atom t.rel_name (fkv :: rv));
                D.Neg (atom s.rel_name ((D.Anon :: anon (List.length lcols)) @ [ fkv ])) ];
        ]
      | `Aux ->
        (* inner JOIN ON FK: unmatched rows live in auxiliaries instead *)
        []
    in
    let s_plus = mkrel (aux_name "lplus") (lcols @ [ fk ]) in
    let t_plus = mkrel (aux_name "rplus") rcols in
    let aux_unmatched_src, aux_unmatched_tgt =
      match padding with
      | `Omega -> ([], [])
      | `Aux ->
        ( [
            atom s_plus.rel_name ((pv :: lv) @ [ fkv ])
            <-- [ D.Pos (atom s.rel_name ((pv :: lv) @ [ fkv ]));
                  D.Cond (Sql.Is_null (sql_col fk_var, false)) ];
            atom t_plus.rel_name (fkv :: rv)
            <-- [ D.Pos (atom t.rel_name (fkv :: rv));
                  D.Neg (atom s.rel_name ((D.Anon :: anon (List.length lcols)) @ [ fkv ])) ];
          ],
          [
            atom s.rel_name ((pv :: lv) @ [ null ])
            <-- [ D.Pos (atom s_plus.rel_name ((pv :: lv) @ [ D.Anon ])) ];
            atom t.rel_name (fkv :: rv) <-- [ D.Pos (atom t_plus.rel_name (fkv :: rv)) ];
          ] )
    in
    {
      base with
      sources = [ r ];
      targets = [ s; t ];
      aux_src =
        (id :: (match padding with `Omega -> [] | `Aux -> [ s_plus; t_plus ]));
      gamma_tgt =
        [
          (* (141): partner rows via the ID mapping; NULL markers excluded *)
          atom t.rel_name (fkv :: rv)
          <-- [ D.Pos (atom r.rel_name full_args);
                D.Pos (atom id.rel_name [ pv; fkv ]);
                D.Cond (Sql.Is_null (sql_col fk_var, true)) ];
          (* (144)/(145) *)
          atom s.rel_name ((pv :: lv) @ [ fkv ])
          <-- [ D.Pos (atom r.rel_name full_args);
                D.Pos (atom id.rel_name [ pv; fkv ]);
                (* orphan rows resurfaced by (149) carry their own id as key
                   and must not reappear as left-target rows *)
                D.Cond
                  (sql_or
                     (Sql.Is_null (sql_col fk_var, false))
                     (Sql.Binop (Sql.Neq, sql_col key, sql_col fk_var))) ];
        ]
        @ aux_unmatched_tgt;
      gamma_src =
        [
          (* (147) *)
          atom r.rel_name full_args
          <-- [ D.Pos (atom s.rel_name ((pv :: lv) @ [ fkv ]));
                D.Pos (atom t.rel_name (fkv :: rv)) ];
          (* (150)-(152) *)
          atom id.rel_name [ pv; fkv ]
          <-- [ D.Pos (atom s.rel_name ((pv :: anon (List.length lcols)) @ [ fkv ]));
                D.Pos (atom t.rel_name (fkv :: anon (List.length rcols))) ];
          atom id.rel_name [ pv; null ]
          <-- [ D.Pos (atom s.rel_name ((pv :: anon (List.length lcols)) @ [ null ])) ];
          atom id.rel_name [ fkv; fkv ]
          <-- [ D.Pos (atom t.rel_name (fkv :: anon (List.length rcols)));
                D.Neg (atom s.rel_name ((D.Anon :: anon (List.length lcols)) @ [ fkv ])) ];
        ]
        @ orphan_src_rules @ aux_unmatched_src;
      backfill =
        [
          (* (142): assign partner ids to existing rows; the skolem memo
             deduplicates equal payloads *)
          atom id.rel_name [ pv; fkv ]
          <-- [ D.Pos (atom r.rel_name full_args); not_all_null rcols;
                D.Assign (fk_var, skolem_call sk rcols) ];
          atom id.rel_name [ pv; null ]
          <-- [ D.Pos (atom r.rel_name full_args); all_null rcols ];
        ];
    }
  | On_cond cond ->
    (* B.4/B.6: both parts get fresh identifiers; the pair table ID(p, s!, t!)
       is physical in both materialization states. *)
    if List.length (lcols @ rcols) <> List.length table_cols then
      error "DECOMPOSE ON COND: the two parts must partition the columns";
    let s = mkrel lname lcols and t = mkrel rname rcols in
    let sid = "s!" and tid = "t!" in
    let id = mkrel (aux_name "id") [ sid; tid ] in
    let id_new = mkrel (aux_name "id_new") [ sid; tid ] in
    let unpaired = mkrel (aux_name "unpaired") [ sid; tid ] in
    let s_plus = mkrel (aux_name "lplus") lcols in
    let t_plus = mkrel (aux_name "rplus") rcols in
    let pad_src_rules =
      (* the guards use the *new* pair state IDn (rules (170)/(171) and
         (191)/(192)): a payload freshly joined by rule (166) must not also
         resurface one-sided *)
      match padding with
      | `Omega ->
        [
          atom r.rel_name
            (D.v sid
            :: List.map (fun c -> if List.mem c lcols then D.v c else null) table_cols)
          <-- [ D.Pos (atom s.rel_name (D.v sid :: lv));
                D.Neg (atom id_new.rel_name [ D.Anon; D.v sid; D.Anon ]) ];
          atom r.rel_name
            (D.v tid
            :: List.map (fun c -> if List.mem c rcols then D.v c else null) table_cols)
          <-- [ D.Pos (atom t.rel_name (D.v tid :: rv));
                D.Neg (atom id_new.rel_name [ D.Anon; D.Anon; D.v tid ]) ];
        ]
      | `Aux ->
        [
          atom s_plus.rel_name (D.v sid :: lv)
          <-- [ D.Pos (atom s.rel_name (D.v sid :: lv));
                D.Neg (atom id_new.rel_name [ D.Anon; D.v sid; D.Anon ]) ];
          atom t_plus.rel_name (D.v tid :: rv)
          <-- [ D.Pos (atom t.rel_name (D.v tid :: rv));
                D.Neg (atom id_new.rel_name [ D.Anon; D.Anon; D.v tid ]) ];
        ]
    in
    let pad_tgt_rules =
      match padding with
      | `Omega -> []
      | `Aux ->
        [
          (* (195)/(198) *)
          atom s.rel_name (D.v sid :: lv) <-- [ D.Pos (atom s_plus.rel_name (D.v sid :: lv)) ];
          atom t.rel_name (D.v tid :: rv) <-- [ D.Pos (atom t_plus.rel_name (D.v tid :: rv)) ];
        ]
    in
    {
      base with
      sources = [ r ];
      targets = [ s; t ];
      aux_both = [ id ];
      aux_tgt = [ unpaired ];
      aux_src =
        (id_new :: (match padding with `Omega -> [] | `Aux -> [ s_plus; t_plus ]));
      gamma_tgt =
        [
          (* (157)/(160): payloads reachable through the pair table *)
          atom s.rel_name (D.v sid :: lv)
          <-- [ D.Pos (atom r.rel_name full_args);
                D.Pos (atom id.rel_name [ pv; D.v sid; D.Anon ]);
                not_all_null lcols ];
          atom t.rel_name (D.v tid :: rv)
          <-- [ D.Pos (atom r.rel_name full_args);
                D.Pos (atom id.rel_name [ pv; D.Anon; D.v tid ]);
                not_all_null rcols ];
          (* (158)/(161): rows without a recorded pair (e.g. omega-padded
             resurfaced rows) keep their own key as part identifier *)
          atom s.rel_name (pv :: lv)
          <-- [ D.Pos (atom r.rel_name full_args);
                D.Neg (atom id.rel_name [ pv; D.Anon; D.Anon ]);
                not_all_null lcols ];
          atom t.rel_name (pv :: rv)
          <-- [ D.Pos (atom r.rel_name full_args);
                D.Neg (atom id.rel_name [ pv; D.Anon; D.Anon ]);
                not_all_null rcols ];
          (* (164): remember condition-matching pairs that are not joined *)
          atom unpaired.rel_name [ pv; D.v sid; D.v tid ]
          <-- [ D.Pos (atom s.rel_name (D.v sid :: lv));
                D.Pos (atom t.rel_name (D.v tid :: rv));
                D.Cond cond;
                D.Neg (atom id.rel_name [ D.Anon; D.v sid; D.v tid ]);
                D.Assign (key, skolem_call (skolem_name "idr") [ sid; tid ]) ];
        ]
        @ pad_tgt_rules;
      gamma_src =
        [
          (* (165): recombine pairs recorded in ID *)
          atom r.rel_name full_args
          <-- [ D.Pos (atom id.rel_name [ pv; D.v sid; D.v tid ]);
                D.Pos (atom s.rel_name (D.v sid :: lv));
                D.Pos (atom t.rel_name (D.v tid :: rv)) ];
          (* one-sided rows recorded with a NULL partner id *)
          atom r.rel_name
            (pv :: List.map (fun c -> if List.mem c lcols then D.v c else null)
                     table_cols)
          <-- [ D.Pos (atom id.rel_name [ pv; D.v sid; null ]);
                D.Pos (atom s.rel_name (D.v sid :: lv)) ];
          atom r.rel_name
            (pv :: List.map (fun c -> if List.mem c rcols then D.v c else null)
                     table_cols)
          <-- [ D.Pos (atom id.rel_name [ pv; null; D.v tid ]);
                D.Pos (atom t.rel_name (D.v tid :: rv)) ];
          (* (166): unrecorded pairs matching the condition re-join under a
             fresh id unless deliberately unpaired *)
          atom r.rel_name full_args
          <-- [ D.Pos (atom s.rel_name (D.v sid :: lv));
                D.Pos (atom t.rel_name (D.v tid :: rv));
                D.Cond cond;
                D.Neg (atom unpaired.rel_name [ D.Anon; D.v sid; D.v tid ]);
                D.Neg (atom id.rel_name [ D.Anon; D.v sid; D.v tid ]);
                D.Assign (key, skolem_call (skolem_name "idr") [ sid; tid ]) ];
          (* (167)/(168): the new pair-table state IDn = old entries plus the
             pairs freshly joined by (166) *)
          atom id_new.rel_name [ pv; D.v sid; D.v tid ]
          <-- [ D.Pos (atom id.rel_name [ pv; D.v sid; D.v tid ]) ];
          atom id_new.rel_name [ pv; D.v sid; D.v tid ]
          <-- [ D.Pos (atom s.rel_name (D.v sid :: lv));
                D.Pos (atom t.rel_name (D.v tid :: rv));
                D.Cond cond;
                D.Neg (atom unpaired.rel_name [ D.Anon; D.v sid; D.v tid ]);
                D.Neg (atom id.rel_name [ D.Anon; D.v sid; D.v tid ]);
                D.Assign (key, skolem_call (skolem_name "idr") [ sid; tid ]) ];
        ]
        @ pad_src_rules;
      state_updates = [ (id_new.rel_name, id.rel_name) ];
      backfill =
        [
          (* (157)-(163): assign part identifiers to every existing row; the
             skolem memos deduplicate equal payloads. A side whose payload is
             entirely NULL gets a NULL identifier (the omega convention). *)
          atom id.rel_name [ pv; D.v sid; D.v tid ]
          <-- [ D.Pos (atom r.rel_name full_args);
                not_all_null lcols; not_all_null rcols;
                D.Assign (sid, skolem_call (skolem_name "ids") lcols);
                D.Assign (tid, skolem_call (skolem_name "idt") rcols) ];
          atom id.rel_name [ pv; D.v sid; null ]
          <-- [ D.Pos (atom r.rel_name full_args);
                not_all_null lcols; all_null rcols;
                D.Assign (sid, skolem_call (skolem_name "ids") lcols) ];
          atom id.rel_name [ pv; null; D.v tid ]
          <-- [ D.Pos (atom r.rel_name full_args);
                all_null lcols; not_all_null rcols;
                D.Assign (tid, skolem_call (skolem_name "idt") rcols) ];
        ];
    }

(** Exchange the two mapping directions of a decompose-orientation instance,
    yielding the corresponding JOIN instance. *)
let invert_instance smo inst =
  {
    inst with
    spec = smo;
    sources = inst.targets;
    targets = inst.sources;
    aux_src = inst.aux_tgt;
    aux_tgt = inst.aux_src;
    gamma_tgt = inst.gamma_src;
    gamma_src = inst.gamma_tgt;
  }

let rec instantiate ~smo ~source_cols ~name_src ~name_tgt ~aux_name ~skolem_name =
  let src table = name_src table in
  let tgt table = name_tgt table in
  let rel name cols = mkrel name cols in
  let base = empty_instance smo in
  match smo with
  | Create_table { table; columns } ->
    { base with targets = [ rel (tgt table) columns ] }
  | Drop_table { table } ->
    (* Materializing a table drop moves the data into an archive auxiliary so
       that the old schema version keeps working. *)
    let cols = source_cols table in
    let r = rel (src table) cols in
    let archive = rel (aux_name "archive") cols in
    let vs = D.vars cols in
    {
      base with
      sources = [ r ];
      aux_tgt = [ archive ];
      gamma_tgt =
        [ atom archive.rel_name (pv :: vs) <-- [ D.Pos (atom r.rel_name (pv :: vs)) ] ];
      gamma_src =
        [ atom r.rel_name (pv :: vs) <-- [ D.Pos (atom archive.rel_name (pv :: vs)) ] ];
    }
  | Rename_table { table; into } ->
    let cols = source_cols table in
    let r = rel (src table) cols and r' = rel (tgt into) cols in
    let vs = D.vars cols in
    {
      base with
      sources = [ r ];
      targets = [ r' ];
      gamma_tgt =
        [ atom r'.rel_name (pv :: vs) <-- [ D.Pos (atom r.rel_name (pv :: vs)) ] ];
      gamma_src =
        [ atom r.rel_name (pv :: vs) <-- [ D.Pos (atom r'.rel_name (pv :: vs)) ] ];
    }
  | Rename_column { table; col; into } ->
    let cols = source_cols table in
    if not (List.mem col cols) then
      error "RENAME COLUMN: no column %s in %s" col table;
    if List.mem into cols then
      error "RENAME COLUMN: column %s already exists" into;
    let cols' = List.map (fun c -> if c = col then into else c) cols in
    let r = rel (src table) cols and r' = rel (tgt table) cols' in
    let vs = D.vars cols in
    {
      base with
      sources = [ r ];
      targets = [ r' ];
      gamma_tgt =
        [ atom r'.rel_name (pv :: vs) <-- [ D.Pos (atom r.rel_name (pv :: vs)) ] ];
      gamma_src =
        [ atom r.rel_name (pv :: vs) <-- [ D.Pos (atom r'.rel_name (pv :: vs)) ] ];
    }
  | Add_column { table; col; default } ->
    (* B.1: the new column is computed by f unless an explicit value was
       written through the target version (auxiliary B). *)
    let cols = source_cols table in
    if List.mem col cols then
      error "ADD COLUMN: column %s already exists in %s" col table;
    let r = rel (src table) cols in
    let r' = rel (tgt table) (cols @ [ col ]) in
    let b = rel (aux_name "b") [ col ] in
    let vs = D.vars cols in
    {
      base with
      sources = [ r ];
      targets = [ r' ];
      aux_src = [ b ];
      gamma_tgt =
        [
          (* (126)/(127) *)
          atom r'.rel_name ((pv :: vs) @ [ D.v col ])
          <-- [ D.Pos (atom r.rel_name (pv :: vs));
                D.Neg (atom b.rel_name [ pv; D.Anon ]);
                D.Assign (col, default) ];
          atom r'.rel_name ((pv :: vs) @ [ D.v col ])
          <-- [ D.Pos (atom r.rel_name (pv :: vs));
                D.Pos (atom b.rel_name [ pv; D.v col ]) ];
        ];
      gamma_src =
        [
          (* (128)/(129) *)
          atom r.rel_name (pv :: vs)
          <-- [ D.Pos (atom r'.rel_name ((pv :: vs) @ [ D.Anon ])) ];
          atom b.rel_name [ pv; D.v col ]
          <-- [ D.Pos (atom r'.rel_name ((pv :: anon (List.length cols)) @ [ D.v col ])) ];
        ];
    }
  | Drop_column { table; col; default } ->
    (* inverse of ADD COLUMN: auxiliary B preserves the dropped values while
       the SMO is materialized *)
    let cols = source_cols table in
    if not (List.mem col cols) then
      error "DROP COLUMN: no column %s in %s" col table;
    let kept = List.filter (fun c -> c <> col) cols in
    let r = rel (src table) cols in
    let r' = rel (tgt table) kept in
    let b = rel (aux_name "b") [ col ] in
    let keptv = D.vars kept in
    let full_args = pv :: List.map (fun c -> D.v c) cols in
    {
      base with
      sources = [ r ];
      targets = [ r' ];
      aux_tgt = [ b ];
      gamma_tgt =
        [
          atom r'.rel_name (pv :: keptv) <-- [ D.Pos (atom r.rel_name full_args) ];
          atom b.rel_name [ pv; D.v col ] <-- [ D.Pos (atom r.rel_name full_args) ];
        ];
      gamma_src =
        [
          atom r.rel_name full_args
          <-- [ D.Pos (atom r'.rel_name (pv :: keptv));
                D.Pos (atom b.rel_name [ pv; D.v col ]) ];
          atom r.rel_name full_args
          <-- [ D.Pos (atom r'.rel_name (pv :: keptv));
                D.Neg (atom b.rel_name [ pv; D.Anon ]);
                D.Assign (col, default) ];
        ];
    }
  | Split { table; left = lname, lcond; right } -> (
    let cols = source_cols table in
    let t = rel (src table) cols in
    let vs = D.vars cols in
    let t_prime = rel (aux_name "rest") cols in
    match right with
    | None ->
      (* single-partition split (the Do! example): R* remembers
         target-inserted rows violating cR, T' keeps the rest *)
      let r = rel (tgt lname) cols in
      let r_star = rel (aux_name "lstar") [] in
      {
        base with
        sources = [ t ];
        targets = [ r ];
        aux_src = [ r_star ];
        aux_tgt = [ t_prime ];
        gamma_tgt =
          [
            atom r.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs)); D.Cond lcond;
                  D.Neg (atom r_star.rel_name [ pv ]) ];
            atom r.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs));
                  D.Pos (atom r_star.rel_name [ pv ]) ];
            atom t_prime.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs)); D.Cond (sql_not lcond);
                  D.Neg (atom r_star.rel_name [ pv ]) ];
          ];
        gamma_src =
          [
            atom t.rel_name (pv :: vs) <-- [ D.Pos (atom r.rel_name (pv :: vs)) ];
            atom t.rel_name (pv :: vs) <-- [ D.Pos (atom t_prime.rel_name (pv :: vs)) ];
            atom r_star.rel_name [ pv ]
            <-- [ D.Pos (atom r.rel_name (pv :: vs)); D.Cond (sql_not lcond) ];
          ];
      }
    | Some (rname, rcond) ->
      (* the full SPLIT of Section 4, rules (12)-(25) *)
      let r = rel (tgt lname) cols and s = rel (tgt rname) cols in
      let r_minus = rel (aux_name "lminus") [] in
      let r_star = rel (aux_name "lstar") [] in
      let s_plus = rel (aux_name "rplus") cols in
      let s_minus = rel (aux_name "rminus") [] in
      let s_star = rel (aux_name "rstar") [] in
      let vs' = List.map prime cols in
      {
        base with
        sources = [ t ];
        targets = [ r; s ];
        aux_src = [ r_minus; r_star; s_plus; s_minus; s_star ];
        aux_tgt = [ t_prime ];
        gamma_tgt =
          [
            (* (12) *)
            atom r.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs)); D.Cond lcond;
                  D.Neg (atom r_minus.rel_name [ pv ]) ];
            (* (13) *)
            atom r.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs));
                  D.Pos (atom r_star.rel_name [ pv ]) ];
            (* (14) *)
            atom s.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs)); D.Cond rcond;
                  D.Neg (atom s_minus.rel_name [ pv ]);
                  D.Neg (atom s_plus.rel_name (pv :: anon (List.length cols))) ];
            (* (15) *)
            atom s.rel_name (pv :: vs) <-- [ D.Pos (atom s_plus.rel_name (pv :: vs)) ];
            (* (16) *)
            atom s.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs));
                  D.Pos (atom s_star.rel_name [ pv ]);
                  D.Neg (atom s_plus.rel_name (pv :: anon (List.length cols))) ];
            (* (17) *)
            atom t_prime.rel_name (pv :: vs)
            <-- [ D.Pos (atom t.rel_name (pv :: vs));
                  D.Cond (sql_not lcond); D.Cond (sql_not rcond);
                  D.Neg (atom r_star.rel_name [ pv ]);
                  D.Neg (atom s_star.rel_name [ pv ]) ];
          ];
        gamma_src =
          [
            (* (18) *)
            atom t.rel_name (pv :: vs) <-- [ D.Pos (atom r.rel_name (pv :: vs)) ];
            (* (19) *)
            atom t.rel_name (pv :: vs)
            <-- [ D.Pos (atom s.rel_name (pv :: vs));
                  D.Neg (atom r.rel_name (pv :: anon (List.length cols))) ];
            (* (20) *)
            atom t.rel_name (pv :: vs) <-- [ D.Pos (atom t_prime.rel_name (pv :: vs)) ];
            (* (21) *)
            atom r_minus.rel_name [ pv ]
            <-- [ D.Pos (atom s.rel_name (pv :: vs));
                  D.Neg (atom r.rel_name (pv :: anon (List.length cols)));
                  D.Cond lcond ];
            (* (22) *)
            atom r_star.rel_name [ pv ]
            <-- [ D.Pos (atom r.rel_name (pv :: vs)); D.Cond (sql_not lcond) ];
            (* (23) *)
            atom s_plus.rel_name (pv :: vs)
            <-- [ D.Pos (atom s.rel_name (pv :: vs));
                  D.Pos (atom r.rel_name (pv :: D.vars vs'));
                  lists_differ cols vs' ];
            (* (24) *)
            atom s_minus.rel_name [ pv ]
            <-- [ D.Pos (atom r.rel_name (pv :: vs));
                  D.Neg (atom s.rel_name (pv :: anon (List.length cols)));
                  D.Cond rcond ];
            (* (25) *)
            atom s_star.rel_name [ pv ]
            <-- [ D.Pos (atom s.rel_name (pv :: vs)); D.Cond (sql_not rcond) ];
          ];
      })
  | Merge { left = lname, lcond; right = rname, rcond; into } ->
    (* MERGE is the inverse of SPLIT (Appendix A): exchange the directions. *)
    let lcols = source_cols lname and rcols = source_cols rname in
    if lcols <> rcols then
      error "MERGE: %s and %s must have identical columns" lname rname;
    let split_inst =
      instantiate
        ~smo:
          (Split { table = into; left = (lname, lcond); right = Some (rname, rcond) })
        ~source_cols:(fun _ -> lcols)
        ~name_src:(fun _ -> name_tgt into)
        ~name_tgt:name_src ~aux_name ~skolem_name
    in
    invert_instance smo split_inst
  | Decompose { table; left = lname, lcols; right; linkage } -> (
    match right with
    | Some (rname, rcols) ->
      decompose_family ~smo ~table_name:(src table) ~table_cols:(source_cols table)
        ~left:(tgt lname, lcols) ~right:(tgt rname, rcols) ~linkage ~aux_name
        ~skolem_name ~padding:`Omega
    | None ->
      (* projection decompose: a hidden auxiliary keeps the dropped columns *)
      let cols = source_cols table in
      List.iter
        (fun c ->
          if not (List.mem c cols) then
            error "DECOMPOSE: no column %s in %s" c table)
        lcols;
      let dropped = List.filter (fun c -> not (List.mem c lcols)) cols in
      let r = rel (src table) cols in
      let s = rel (tgt lname) lcols in
      let keep = rel (aux_name "keep") dropped in
      let full_args = pv :: List.map (fun c -> D.v c) cols in
      let lv = D.vars lcols and dv = D.vars dropped in
      {
        base with
        sources = [ r ];
        targets = [ s ];
        aux_tgt = [ keep ];
        gamma_tgt =
          [
            atom s.rel_name (pv :: lv) <-- [ D.Pos (atom r.rel_name full_args) ];
            atom keep.rel_name (pv :: dv) <-- [ D.Pos (atom r.rel_name full_args) ];
          ];
        gamma_src =
          [
            atom r.rel_name full_args
            <-- [ D.Pos (atom s.rel_name (pv :: lv));
                  D.Pos (atom keep.rel_name (pv :: dv)) ];
            atom r.rel_name
              (pv
              :: List.map (fun c -> if List.mem c lcols then D.v c else null) cols)
            <-- [ D.Pos (atom s.rel_name (pv :: lv));
                  D.Neg (atom keep.rel_name (pv :: anon (List.length dropped))) ];
          ];
      })
  | Join { left; right; into; linkage; outer } ->
    (* Joins are decompose instances with the directions exchanged (Table 5).
       Outer joins pad missing partners with NULLs; inner joins preserve
       unmatched rows in auxiliaries (B.5/B.6). *)
    let lcols_full = source_cols left and rcols = source_cols right in
    let lcols, combined_cols =
      match linkage with
      | On_fk fk ->
        if not (List.mem fk lcols_full) then
          error "JOIN ON FK: %s has no column %s" left fk;
        let a = List.filter (fun c -> c <> fk) lcols_full in
        (a, a @ rcols)
      | On_pk | On_cond _ -> (lcols_full, lcols_full @ rcols)
    in
    let padding = if outer then `Omega else `Aux in
    let dec =
      decompose_family ~smo ~table_name:(tgt into) ~table_cols:combined_cols
        ~left:(src left, lcols) ~right:(src right, rcols) ~linkage ~aux_name
        ~skolem_name ~padding
    in
    invert_instance smo dec

(** Payload columns of the target tables of an SMO, given the payload columns
    of its source tables (used by the genealogy to compute version schemas). *)
let target_table_cols ~smo ~source_cols =
  match smo with
  | Create_table { table; columns } -> [ (table, columns) ]
  | Drop_table _ -> []
  | Rename_table { table; into } -> [ (into, source_cols table) ]
  | Rename_column { table; col; into } ->
    [ (table, List.map (fun c -> if c = col then into else c) (source_cols table)) ]
  | Add_column { table; col; _ } -> [ (table, source_cols table @ [ col ]) ]
  | Drop_column { table; col; _ } ->
    [ (table, List.filter (fun c -> c <> col) (source_cols table)) ]
  | Split { table; left = lname, _; right } -> (
    let cols = source_cols table in
    match right with
    | Some (rname, _) -> [ (lname, cols); (rname, cols) ]
    | None -> [ (lname, cols) ])
  | Merge { left = lname, _; into; _ } -> [ (into, source_cols lname) ]
  | Decompose { left = lname, lcols; right; linkage; _ } -> (
    let lcols' =
      match linkage, right with
      | On_fk fk, Some _ -> lcols @ [ fk ]
      | _ -> lcols
    in
    match right with
    | Some (rname, rcols) -> [ (lname, lcols'); (rname, rcols) ]
    | None -> [ (lname, lcols) ])
  | Join { left; right; into; linkage; _ } ->
    let lcols_full = source_cols left and rcols = source_cols right in
    let lcols =
      match linkage with
      | On_fk fk -> List.filter (fun c -> c <> fk) lcols_full
      | On_pk | On_cond _ -> lcols_full
    in
    [ (into, lcols @ rcols) ]
