(** Parser for BiDEL scripts (the syntax of Figure 2), reusing the shared
    lexer and the SQL expression grammar for conditions and value
    functions. *)

exception Parse_error of string

val parse_smo : Minidb.Sql_lexer.Cursor.t -> Ast.smo

val parse_statement : Minidb.Sql_lexer.Cursor.t -> Ast.statement

val script_of_string : string -> Ast.statement list
(** Parse a whole script ([CREATE SCHEMA VERSION ...], [DROP SCHEMA VERSION],
    [MATERIALIZE] statements). *)

val statement_of_string : string -> Ast.statement
(** Exactly one statement; raises {!Parse_error} otherwise. *)

val smo_of_string : string -> Ast.smo
(** A single SMO, e.g. for tests. *)
