(** Bidirectional semantics of BiDEL SMOs as Datalog rule templates
    (Section 4 and Appendix B of the paper).

    Every SMO instance is described by two mapping rule sets:
    - [gamma_tgt] derives the target side (target data tables plus
      target-side auxiliaries) from the source side, and
    - [gamma_src] derives the source side from the target side.

    Auxiliary relations capture what the basic mapping would lose: split
    twins ([R-], [R*], [S+], [S-], [S*]), dropped-column values ([B]),
    unmatched join partners, archive copies of dropped tables, and the
    identifier mappings ([ID]) of FK/condition decompositions.

    Deviations from the paper's appendix are documented in DESIGN.md §5
    (notably: identifier skolems never appear in view rules — the [ID]
    auxiliaries are kept total eagerly via [backfill] and the write triggers;
    all-NULL payloads follow the ω-convention). *)

type rel = { rel_name : string; rel_cols : string list }
(** A relation of the instance; the first column is the key. *)

type instance = {
  spec : Ast.smo;
  sources : rel list;  (** source-side data relations *)
  targets : rel list;  (** target-side data relations *)
  aux_src : rel list;  (** physical while the SMO is virtualized *)
  aux_tgt : rel list;  (** physical while the SMO is materialized *)
  aux_both : rel list;  (** physical in both states (pair-id tables) *)
  gamma_tgt : Datalog.Ast.t;
  gamma_src : Datalog.Ast.t;
  backfill : Datalog.Ast.t;
      (** evolution-time rules populating identifier auxiliaries for
          pre-existing source data; the only rules calling skolem functions *)
  state_updates : (string * string) list;
      (** [(new_pred, state_pred)]: the mapping derives [new_pred] as the
          updated contents of the stateful auxiliary [state_pred] *)
}

exception Semantics_error of string

val instantiate :
  smo:Ast.smo ->
  source_cols:(string -> string list) ->
  name_src:(string -> string) ->
  name_tgt:(string -> string) ->
  aux_name:(string -> string) ->
  skolem_name:(string -> string) ->
  instance
(** Instantiate the rule templates for one SMO. [source_cols] gives the
    payload columns of each source table; the naming callbacks map logical
    table names to unique relation names and auxiliary/skolem kinds to
    object names ([skolem_name] must register the function). Raises
    {!Semantics_error} on ill-formed SMOs (unknown columns, non-partitioning
    decompositions, mismatched merge schemas, ...). *)

val target_table_cols :
  smo:Ast.smo -> source_cols:(string -> string list) ->
  (string * string list) list
(** Payload columns of the SMO's target tables (for catalog bookkeeping). *)

val invert_instance : Ast.smo -> instance -> instance
(** Exchange the two mapping directions (how MERGE and the JOINs are built
    from SPLIT and DECOMPOSE). *)
