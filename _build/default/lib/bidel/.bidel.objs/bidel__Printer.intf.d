lib/bidel/printer.mli: Ast Format
