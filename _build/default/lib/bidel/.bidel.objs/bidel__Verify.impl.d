lib/bidel/verify.ml: Datalog Fmt Hashtbl List Minidb Option Smo_semantics
