lib/bidel/smo_semantics.ml: Ast Datalog Fmt List Minidb Option String
