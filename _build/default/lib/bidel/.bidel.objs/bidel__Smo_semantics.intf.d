lib/bidel/smo_semantics.mli: Ast Datalog
