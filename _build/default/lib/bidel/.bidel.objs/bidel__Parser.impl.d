lib/bidel/parser.ml: Ast List Minidb
