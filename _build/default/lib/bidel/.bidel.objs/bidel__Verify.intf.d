lib/bidel/verify.mli: Minidb Smo_semantics
