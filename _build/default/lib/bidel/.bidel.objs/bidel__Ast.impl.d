lib/bidel/ast.ml: Minidb
