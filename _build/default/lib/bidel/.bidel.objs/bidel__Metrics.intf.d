lib/bidel/metrics.mli: Format
