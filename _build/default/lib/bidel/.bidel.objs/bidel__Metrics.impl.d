lib/bidel/metrics.ml: Float Fmt List String
