lib/bidel/parser.mli: Ast Minidb
