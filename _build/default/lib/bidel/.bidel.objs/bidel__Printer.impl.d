lib/bidel/printer.ml: Ast Fmt List Minidb String
