(** Tiny deterministic linear-congruential generator so every scenario and
    benchmark is reproducible without touching the global [Random] state. *)

type t = { mutable state : int64 }

let create ?(seed = 42) () = { state = Int64.of_int seed }

let next t =
  (* Knuth's MMIX LCG *)
  t.state <-
    Int64.add (Int64.mul t.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical t.state 17) land 0x3FFFFFFF

let int t bound = if bound <= 0 then 0 else next t mod bound

let pick t arr = arr.(int t (Array.length arr))

let chance t percent = int t 100 < percent
