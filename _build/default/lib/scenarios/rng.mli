(** Tiny deterministic linear-congruential generator: every scenario and
    benchmark is reproducible without touching the global [Random] state. *)

type t

val create : ?seed:int -> unit -> t
(** Default seed 42. *)

val next : t -> int
(** Next raw non-negative pseudo-random integer. *)

val int : t -> int -> int
(** [int t bound] — uniform-ish in [0, bound); 0 for non-positive bounds. *)

val pick : t -> 'a array -> 'a

val chance : t -> int -> bool
(** [chance t p] — true with probability [p] percent. *)
