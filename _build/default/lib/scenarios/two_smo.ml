(** The micro-benchmark of Figure 13: every evolution of the shape

      1st version — 1st SMO — 2nd version — 2nd SMO — 3rd version

    where the second version always contains a table [R(a, b, c)]. The first
    SMO is chosen so that it *produces* R(a,b,c); the second consumes it.
    Renames and create/drop-table SMOs are excluded, as in the paper (they
    have no propagation cost). *)

module I = Inverda.Api

type smo_kind = K_add | K_drop | K_join | K_decompose | K_split | K_merge

let kind_name = function
  | K_add -> "ADD COLUMN"
  | K_drop -> "DROP COLUMN"
  | K_join -> "JOIN"
  | K_decompose -> "DECOMPOSE"
  | K_split -> "SPLIT"
  | K_merge -> "MERGE"

let all_kinds = [ K_add; K_drop; K_join; K_decompose; K_split; K_merge ]

(** First version's tables and the SMO producing R(a,b,c) in v2. *)
let producer = function
  | K_add -> ([ "CREATE TABLE R(a, b)" ], "ADD COLUMN c AS a + 1 INTO R")
  | K_drop -> ([ "CREATE TABLE R(a, b, c, d)" ], "DROP COLUMN d FROM R DEFAULT 0")
  | K_join ->
    ( [ "CREATE TABLE R1(a)"; "CREATE TABLE R2(b, c)" ],
      "JOIN TABLE R1, R2 INTO R ON PK" )
  | K_decompose ->
    ( [ "CREATE TABLE R0(a, b, c, d)" ],
      "DECOMPOSE TABLE R0 INTO R(a, b, c), Rrest(d) ON PK" )
  | K_split ->
    ( [ "CREATE TABLE T0(a, b, c)" ],
      "SPLIT TABLE T0 INTO R WITH a < 500, Rhigh WITH a >= 500" )
  | K_merge ->
    ( [ "CREATE TABLE A0(a, b, c)"; "CREATE TABLE B0(a, b, c)" ],
      "MERGE TABLE A0 (a < 500), B0 (a >= 500) INTO R" )

(** The SMO consuming R(a,b,c) in v2 (plus helper tables it needs in v1). *)
let consumer = function
  | K_add -> ([], "ADD COLUMN e AS b + 1 INTO R")
  | K_drop -> ([], "DROP COLUMN c FROM R DEFAULT 0")
  | K_join -> ([ "CREATE TABLE H(h1)" ], "JOIN TABLE R, H INTO RJ ON PK")
  | K_decompose -> ([], "DECOMPOSE TABLE R INTO RA(a), RB(b, c) ON PK")
  | K_split -> ([], "SPLIT TABLE R INTO RL WITH a < 500, RH WITH a >= 500")
  | K_merge -> ([ "CREATE TABLE M(a, b, c)" ], "MERGE TABLE R (a < 500), M (a >= 500) INTO RM")

(** Build the three-version chain for one SMO pair. Returns the API instance;
    the versions are named v1, v2, v3. *)
let build (k1, k2) =
  let t = I.create () in
  let creates1, smo1 = producer k1 in
  let creates2, smo2 = consumer k2 in
  I.evolve t
    (Fmt.str "CREATE SCHEMA VERSION v1 WITH %s;"
       (String.concat "; " (creates1 @ creates2)));
  I.evolve t (Fmt.str "CREATE SCHEMA VERSION v2 FROM v1 WITH %s;" smo1);
  I.evolve t (Fmt.str "CREATE SCHEMA VERSION v3 FROM v2 WITH %s;" smo2);
  t

(** Load [n] tuples into R through the second version (values of [a] spread
    over 0..999 so the split/merge conditions partition the data). *)
let load t n =
  let db = I.database t in
  let rng = Rng.create ~seed:5 () in
  for i = 1 to n do
    ignore
      (Minidb.Engine.execf db
         "INSERT INTO v2.R (a, b, c) VALUES (%d, %d, %d)" (Rng.int rng 1000) i
         (Rng.int rng 100))
  done

(** Tables of a version, for read queries. *)
let read_all t version =
  let db = I.database t in
  List.iter
    (fun table ->
      ignore
        (Minidb.Engine.query db
           (Fmt.str "SELECT COUNT(*) FROM %s.%s"
              version table)))
    (I.version_tables t version)

(** Materialize the chain at one of the three versions. *)
let materialize_at t version = I.materialize t [ version ]
