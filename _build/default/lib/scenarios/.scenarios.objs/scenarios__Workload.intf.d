lib/scenarios/workload.mli: Minidb Rng
