lib/scenarios/two_smo.ml: Fmt Inverda List Minidb Rng String
