lib/scenarios/rng.mli:
