lib/scenarios/rng.ml: Array Int64
