lib/scenarios/wikimedia.ml: Array Bidel Fmt Hashtbl Inverda List Minidb Option Rng String
