lib/scenarios/tasky_sql.ml: Minidb Rng Tasky
