lib/scenarios/tasky.ml: Fmt Inverda Minidb Rng
