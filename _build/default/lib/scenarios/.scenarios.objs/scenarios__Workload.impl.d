lib/scenarios/workload.ml: Array Fmt List Minidb Rng Tasky Unix
