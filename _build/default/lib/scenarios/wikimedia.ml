(** The Wikimedia schema-evolution scenario.

    The paper replays the 171 schema versions (211 SMOs) of the Wikimedia
    database history [Curino et al., ICEIS'08] and loads the Akan wiki dump.
    Neither artifact ships with this reproduction, so we *synthesize* an
    evolution history with exactly the SMO-type histogram of Table 4

      CREATE TABLE 42, DROP TABLE 10, RENAME TABLE 1, ADD COLUMN 95,
      DROP COLUMN 21, RENAME COLUMN 36, JOIN 0, DECOMPOSE 4, MERGE 2

    spread over 171 versions, and load synthetic page/link data. The
    experiments on this scenario (Table 4, Figure 12) depend only on the SMO
    mix and the distance between the queried and the materialized version,
    both of which are preserved (see DESIGN.md). The [page] and [link] tables
    exist in every version with stable core columns, so the Figure 12
    template queries run against any version. *)

module I = Inverda.Api

type kind = Create | Drop | Ren_table | Add_col | Drop_col | Ren_col | Dec | Mer

let kind_name = function
  | Create -> "CREATE TABLE"
  | Drop -> "DROP TABLE"
  | Ren_table -> "RENAME TABLE"
  | Add_col -> "ADD COLUMN"
  | Drop_col -> "DROP COLUMN"
  | Ren_col -> "RENAME COLUMN"
  | Dec -> "DECOMPOSE"
  | Mer -> "MERGE"

(** Paper histogram (Table 4), minus the SMOs of the initial version. *)
let full_counts =
  [ (Create, 42); (Drop, 10); (Ren_table, 1); (Add_col, 95); (Drop_col, 21);
    (Ren_col, 36); (Dec, 4); (Mer, 2) ]

type table_state = { t_name : string; mutable t_cols : string list; core : bool }

type gen_state = {
  mutable tables : table_state list;
  mutable twins : (string * string) list;  (** identically-shaped pairs *)
  mutable next_filler : int;
  mutable next_col : int;
  mutable smos : (kind * string) list;  (** emitted, reversed *)
}

let find_table st name = List.find (fun t -> t.t_name = name) st.tables

let fillers st = List.filter (fun t -> not t.core) st.tables

let remove_table st name =
  st.tables <- List.filter (fun t -> t.t_name <> name) st.tables;
  st.twins <-
    List.filter (fun (a, b) -> a <> name && b <> name) st.twins

(* one SMO of the given kind as BiDEL text, updating the mirror state;
   returns None if the precondition is not met right now *)
let emit st kind =
  let fresh_cols n =
    List.init n (fun _ ->
        st.next_col <- st.next_col + 1;
        Fmt.str "c%d" st.next_col)
  in
  let rotate_filler () =
    match fillers st with
    | [] -> None
    | fs -> Some (List.nth fs (st.next_col mod List.length fs))
  in
  let text =
    match kind with
    | Create ->
      st.next_filler <- st.next_filler + 1;
      let name = Fmt.str "f%d" st.next_filler in
      let cols = fresh_cols 3 in
      st.tables <- st.tables @ [ { t_name = name; t_cols = cols; core = false } ];
      (* every sixth filler gets a twin for the later merges *)
      if st.next_filler mod 6 = 2 then begin
        match
          List.find_opt
            (fun t -> (not t.core) && t.t_name <> name && List.length t.t_cols = 3)
            st.tables
        with
        | Some prev ->
          (* shape the new table like the previous one *)
          (find_table st name).t_cols <- prev.t_cols;
          st.twins <- (prev.t_name, name) :: st.twins;
          Some
            (Fmt.str "CREATE TABLE %s(%s)" name (String.concat "," prev.t_cols))
        | None -> Some (Fmt.str "CREATE TABLE %s(%s)" name (String.concat "," cols))
      end
      else Some (Fmt.str "CREATE TABLE %s(%s)" name (String.concat "," cols))
    | Drop -> (
      (* drop a filler that is not reserved as a merge twin *)
      match
        List.find_opt
          (fun t ->
            (not t.core)
            && not (List.exists (fun (a, b) -> a = t.t_name || b = t.t_name) st.twins))
          (fillers st)
      with
      | Some t ->
        remove_table st t.t_name;
        Some (Fmt.str "DROP TABLE %s" t.t_name)
      | None -> None)
    | Ren_table -> (
      match rotate_filler () with
      | Some t ->
        let name' = t.t_name ^ "r" in
        st.twins <-
          List.map
            (fun (a, b) ->
              ( (if a = t.t_name then name' else a),
                if b = t.t_name then name' else b ))
            st.twins;
        st.tables <-
          List.map
            (fun u -> if u.t_name = t.t_name then { u with t_name = name' } else u)
            st.tables;
        Some (Fmt.str "RENAME TABLE %s INTO %s" t.t_name name')
      | None -> None)
    | Add_col -> (
      (* mostly fillers, occasionally the page table (core cols stay) *)
      let target =
        if st.next_col mod 7 = 0 then Some (find_table st "page")
        else rotate_filler ()
      in
      match target with
      | Some t ->
        let col = List.hd (fresh_cols 1) in
        t.t_cols <- t.t_cols @ [ col ];
        st.twins <- List.filter (fun (a, b) -> a <> t.t_name && b <> t.t_name) st.twins;
        Some (Fmt.str "ADD COLUMN %s AS 0 INTO %s" col t.t_name)
      | None -> None)
    | Drop_col -> (
      match
        List.find_opt
          (fun t -> (not t.core) && List.length t.t_cols > 2)
          (fillers st)
      with
      | Some t ->
        let col = List.nth t.t_cols (List.length t.t_cols - 1) in
        t.t_cols <- List.filter (fun c -> c <> col) t.t_cols;
        st.twins <- List.filter (fun (a, b) -> a <> t.t_name && b <> t.t_name) st.twins;
        Some (Fmt.str "DROP COLUMN %s FROM %s DEFAULT 0" col t.t_name)
      | None -> None)
    | Ren_col -> (
      match rotate_filler () with
      | Some t when t.t_cols <> [] ->
        let col = List.hd t.t_cols in
        let col' = col ^ "r" in
        t.t_cols <- List.map (fun c -> if c = col then col' else c) t.t_cols;
        st.twins <- List.filter (fun (a, b) -> a <> t.t_name && b <> t.t_name) st.twins;
        Some (Fmt.str "RENAME COLUMN %s IN %s TO %s" col t.t_name col')
      | _ -> None)
    | Dec -> (
      match
        List.find_opt
          (fun t ->
            (not t.core)
            && List.length t.t_cols >= 2
            && not (List.exists (fun (a, b) -> a = t.t_name || b = t.t_name) st.twins))
          (fillers st)
      with
      | Some t ->
        let head = List.hd t.t_cols and rest = List.tl t.t_cols in
        let la = t.t_name ^ "a" and lb = t.t_name ^ "b" in
        remove_table st t.t_name;
        st.tables <-
          st.tables
          @ [
              { t_name = la; t_cols = [ head ]; core = false };
              { t_name = lb; t_cols = rest; core = false };
            ];
        Some
          (Fmt.str "DECOMPOSE TABLE %s INTO %s(%s), %s(%s) ON PK" t.t_name la
             head lb (String.concat "," rest))
      | None -> None)
    | Mer -> (
      match st.twins with
      | (a, b) :: rest ->
        st.twins <- rest;
        let cols = (find_table st a).t_cols in
        let c = List.hd cols in
        let merged = a ^ "m" in
        remove_table st a;
        remove_table st b;
        st.tables <- st.tables @ [ { t_name = merged; t_cols = cols; core = false } ];
        Some
          (Fmt.str "MERGE TABLE %s (%s < 500), %s (%s >= 500) INTO %s" a c b c merged)
      | [] -> None)
  in
  (match text with Some txt -> st.smos <- (kind, txt) :: st.smos | None -> ());
  text

(** Build the synthetic evolution: [versions] schema versions (paper scale:
    171) with an SMO histogram scaled from Table 4. Returns the InVerDa
    instance and the version names in order. *)
let build ?(versions = 171) () =
  let scale n = max 1 (n * (versions - 1) / 170) in
  let counts =
    if versions >= 171 then full_counts
    else List.map (fun (k, n) -> (k, scale n)) full_counts
  in
  let api = I.create () in
  (* version 1: the core tables plus a first filler *)
  I.evolve api
    "CREATE SCHEMA VERSION v001 WITH CREATE TABLE page(title, namespace); \
     CREATE TABLE link(src, dst); CREATE TABLE f0(c0a, c0b, c0c);";
  let st =
    {
      tables =
        [
          { t_name = "page"; t_cols = [ "title"; "namespace" ]; core = true };
          { t_name = "link"; t_cols = [ "src"; "dst" ]; core = true };
          { t_name = "f0"; t_cols = [ "c0a"; "c0b"; "c0c" ]; core = false };
        ];
      twins = [];
      next_filler = 0;
      next_col = 0;
      smos = [ (Create, ""); (Create, ""); (Create, "") ];
    }
  in
  (* remaining budget: the three creates above already count *)
  let remaining = Hashtbl.create 8 in
  List.iter
    (fun (k, n) ->
      Hashtbl.replace remaining k (if k = Create then max 0 (n - 3) else n))
    counts;
  let total_left () = Hashtbl.fold (fun _ n acc -> acc + n) remaining 0 in
  let steps = versions - 1 in
  let version_names = ref [ "v001" ] in
  for v = 2 to versions do
    let name = Fmt.str "v%03d" v in
    let parent = List.hd !version_names in
    (* how many SMOs in this version: spread the remaining budget evenly *)
    let versions_left = versions - v + 1 in
    let per = max 1 ((total_left () + versions_left - 1) / versions_left) in
    let ops = ref [] in
    let attempts = ref 0 in
    while List.length !ops < per && total_left () > 0 && !attempts < 50 do
      incr attempts;
      (* pick the kind with the largest normalized remaining share *)
      let candidates =
        List.filter (fun (k, _) -> Hashtbl.find remaining k > 0) counts
      in
      let scored =
        List.map
          (fun (k, n0) ->
            (float_of_int (Hashtbl.find remaining k) /. float_of_int n0, k))
          candidates
        |> List.sort (fun a b -> compare (fst b) (fst a))
      in
      let rec try_kinds = function
        | [] -> ()
        | (_, k) :: rest -> (
          match emit st k with
          | Some txt ->
            Hashtbl.replace remaining k (Hashtbl.find remaining k - 1);
            ops := txt :: !ops
          | None -> try_kinds rest)
      in
      try_kinds scored
    done;
    let body =
      match !ops with
      | [] -> [ Fmt.str "ADD COLUMN pad%d AS 0 INTO page" v ]
      | ops -> List.rev ops
    in
    I.evolve api
      (Fmt.str "CREATE SCHEMA VERSION %s FROM %s WITH %s;" name parent
         (String.concat "; " body));
    version_names := name :: !version_names
  done;
  ignore steps;
  (api, Array.of_list (List.rev !version_names))

(** Histogram of the SMOs actually applied (for the Table 4 report). *)
let histogram (api : I.t) =
  let gen = I.genealogy api in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (si : Inverda.Genealogy.smo_instance) ->
      let name =
        match si.Inverda.Genealogy.si_smo with
        | Bidel.Ast.Join { outer = false; _ } -> "JOIN"
        | Bidel.Ast.Join { outer = true; _ } -> "OUTER JOIN"
        | smo -> Bidel.Ast.smo_name smo
      in
      Hashtbl.replace counts name
        (1 + Option.value (Hashtbl.find_opt counts name) ~default:0))
    (Inverda.Genealogy.all_smos gen);
  List.map
    (fun name -> (name, Option.value (Hashtbl.find_opt counts name) ~default:0))
    [ "CREATE TABLE"; "DROP TABLE"; "RENAME TABLE"; "ADD COLUMN"; "DROP COLUMN";
      "RENAME COLUMN"; "JOIN"; "DECOMPOSE"; "MERGE"; "SPLIT" ]

(** Load synthetic pages and links through the given version's views. *)
let load api ~version ~pages ~links =
  let db = I.database api in
  let rng = Rng.create ~seed:99 () in
  let page_ids = Array.make pages 0 in
  for i = 0 to pages - 1 do
    let id = I.fresh_id api in
    page_ids.(i) <- id;
    ignore
      (Minidb.Engine.execf db
         "INSERT INTO %s.page (p, title, namespace) VALUES (%d, 'Page_%d', %d)"
         version id i (Rng.int rng 16))
  done;
  for _ = 1 to links do
    let src = page_ids.(Rng.int rng pages) in
    let dst = page_ids.(Rng.int rng pages) in
    ignore
      (Minidb.Engine.execf db
         "INSERT INTO %s.link (src, dst) VALUES (%d, %d)" version src dst)
  done

(** Figure 12 template queries against a version's views. *)
let query_page_by_title ~version ~i =
  Fmt.str "SELECT p, namespace FROM %s.page WHERE title = 'Page_%d'" version i

let query_link_count ~version =
  Fmt.str
    "SELECT COUNT(*) FROM %s.link l JOIN %s.page g ON l.src = g.p WHERE g.namespace = 0"
    version version
