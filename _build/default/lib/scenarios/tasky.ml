(** The TasKy running example of the paper (Figure 1): the initial TasKy
    schema, the Do! phone app (horizontal split of the urgent tasks) and the
    normalized TasKy2 release, plus data loaders. *)

module I = Inverda.Api

let bidel_initial =
  "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);"

let bidel_do =
  {|CREATE SCHEMA VERSION Do! FROM TasKy WITH
  SPLIT TABLE Task INTO Todo WITH prio = 1;
  DROP COLUMN prio FROM Todo DEFAULT 1;|}

let bidel_tasky2 =
  {|CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
  DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
  RENAME COLUMN author IN Author TO name;|}

let bidel_migration = "MATERIALIZE 'TasKy2';"

let authors =
  [| "Ann"; "Ben"; "Cleo"; "Dan"; "Eve"; "Finn"; "Gus"; "Hedy"; "Ivan"; "Judy";
     "Kai"; "Lea"; "Mats"; "Nina"; "Olaf"; "Pia"; "Quinn"; "Rosa"; "Sven";
     "Tess" |]

(** Priority distribution: about a third of all tasks are urgent (priority 1),
    the Do! partition. *)
let random_prio rng = if Rng.chance rng 33 then 1 else 2 + Rng.int rng 3

(** Load [n] synthetic tasks through the TasKy version view. *)
let load_tasks ?(rng = Rng.create ()) t n =
  let db = I.database t in
  for i = 1 to n do
    let author = Rng.pick rng authors in
    let prio = random_prio rng in
    ignore
      (Minidb.Engine.execf db
         "INSERT INTO TasKy.Task (author, task, prio) VALUES ('%s', 'task-%d', %d)"
         author i prio)
  done

(** Fresh InVerDa instance with the TasKy schema (and optionally data). *)
let setup_initial ?(tasks = 0) () =
  let t = I.create () in
  I.evolve t bidel_initial;
  if tasks > 0 then load_tasks t tasks;
  t

(** TasKy + Do! + TasKy2, all co-existing; data stays at the initial
    materialization. *)
let setup_full ?(tasks = 0) () =
  let t = setup_initial ~tasks () in
  I.evolve t bidel_do;
  I.evolve t bidel_tasky2;
  t

(* --- workload statements (shared with the handwritten baseline) ----------- *)

(** The version views carry the same names in the InVerDa and handwritten
    setups, so workloads are expressed once. *)
type statement_kind = Read | Insert | Update | Delete

let tasky_read _rng = "SELECT author, task, prio FROM TasKy.Task WHERE prio = 1"

let tasky_point_read rng =
  Fmt.str "SELECT author, task, prio FROM TasKy.Task WHERE p = %d"
    (1 + Rng.int rng 1000)

let tasky_insert rng i =
  Fmt.str "INSERT INTO TasKy.Task (author, task, prio) VALUES ('%s', 'new-%d', %d)"
    (Rng.pick rng authors) i (random_prio rng)

let tasky2_read _rng =
  "SELECT t.task, t.prio, a.name FROM TasKy2.Task t JOIN TasKy2.Author a ON t.author = a.p WHERE t.prio = 1"

let tasky2_insert rng i existing_author_id =
  Fmt.str "INSERT INTO TasKy2.Task (task, prio, author) VALUES ('new2-%d', %d, %d)"
    i (random_prio rng) existing_author_id

let do_read _rng = "SELECT author, task FROM Do!.Todo"

let do_insert rng i =
  Fmt.str "INSERT INTO Do!.Todo (author, task) VALUES ('%s', 'do-%d')"
    (Rng.pick rng authors) i
