(** Hand-written, hand-optimized SQL delta code for the TasKy example — the
    baseline InVerDa is compared against in Table 3 (code size) and
    Figures 8-10 (performance).

    This is what a developer has to write *without* InVerDa to keep the three
    schema versions TasKy, Do! and TasKy2 alive: the version views, all
    INSTEAD OF triggers including the eager author-identity bookkeeping that
    the FK decomposition needs, and a migration script that moves the
    physical data to the TasKy2 layout and rewrites every piece of delta
    code. The views carry the same ["version.table"] names as the InVerDa
    setup so that workloads run unchanged against either implementation. *)

(* --- the initial schema ------------------------------------------------------ *)

let initial_schema =
  {|CREATE TABLE hw_task (p INTEGER PRIMARY KEY, author TEXT, task TEXT, prio INTEGER);|}

(* --- delta code for the initial materialization ------------------------------ *)

let initial_delta_code =
  {|
-- author identity bookkeeping for TasKy2 (deduplicated author table and the
-- task-to-author mapping), maintained eagerly by every write path
CREATE TABLE hw_author (p INTEGER PRIMARY KEY, name TEXT);
CREATE TABLE hw_task_author (p INTEGER PRIMARY KEY, author_p INTEGER);
CREATE INDEX hw_author_name ON hw_author (name);
CREATE INDEX hw_ta_author ON hw_task_author (author_p);

-- ===== TasKy ================================================================
CREATE VIEW TasKy.Task AS SELECT p, author, task, prio FROM hw_task;

CREATE TRIGGER hw_tasky_ins INSTEAD OF INSERT ON TasKy.Task FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_task (p, author, task, prio) VALUES (NEW.p, NEW.author, NEW.task, NEW.prio);
  INSERT INTO hw_author (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author a WHERE a.name = NEW.author);
  INSERT INTO hw_task_author (p, author_p)
    SELECT NEW.p, (SELECT a.p FROM hw_author a WHERE a.name = NEW.author LIMIT 1)
    WHERE NEW.author IS NOT NULL;
END;

CREATE TRIGGER hw_tasky_upd INSTEAD OF UPDATE ON TasKy.Task FOR EACH ROW BEGIN
  UPDATE hw_task SET author = NEW.author, task = NEW.task, prio = NEW.prio WHERE p = OLD.p;
  INSERT INTO hw_author (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author a WHERE a.name = NEW.author);
  DELETE FROM hw_task_author WHERE p = OLD.p;
  INSERT INTO hw_task_author (p, author_p)
    SELECT OLD.p, (SELECT a.p FROM hw_author a WHERE a.name = NEW.author LIMIT 1)
    WHERE NEW.author IS NOT NULL;
  DELETE FROM hw_author
    WHERE name = OLD.author
      AND NOT EXISTS (SELECT * FROM hw_task t WHERE t.author = OLD.author);
END;

CREATE TRIGGER hw_tasky_del INSTEAD OF DELETE ON TasKy.Task FOR EACH ROW BEGIN
  DELETE FROM hw_task WHERE p = OLD.p;
  DELETE FROM hw_task_author WHERE p = OLD.p;
  DELETE FROM hw_author
    WHERE name = OLD.author
      AND NOT EXISTS (SELECT * FROM hw_task t WHERE t.author = OLD.author);
END;

-- ===== Do! ==================================================================
CREATE VIEW Do!.Todo AS SELECT p, author, task FROM hw_task WHERE prio = 1;

CREATE TRIGGER hw_do_ins INSTEAD OF INSERT ON Do!.Todo FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_task (p, author, task, prio) VALUES (NEW.p, NEW.author, NEW.task, 1);
  INSERT INTO hw_author (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author a WHERE a.name = NEW.author);
  INSERT INTO hw_task_author (p, author_p)
    SELECT NEW.p, (SELECT a.p FROM hw_author a WHERE a.name = NEW.author LIMIT 1)
    WHERE NEW.author IS NOT NULL;
END;

CREATE TRIGGER hw_do_upd INSTEAD OF UPDATE ON Do!.Todo FOR EACH ROW BEGIN
  UPDATE hw_task SET author = NEW.author, task = NEW.task WHERE p = OLD.p;
  INSERT INTO hw_author (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author a WHERE a.name = NEW.author);
  DELETE FROM hw_task_author WHERE p = OLD.p;
  INSERT INTO hw_task_author (p, author_p)
    SELECT OLD.p, (SELECT a.p FROM hw_author a WHERE a.name = NEW.author LIMIT 1)
    WHERE NEW.author IS NOT NULL;
  DELETE FROM hw_author
    WHERE name = OLD.author
      AND NOT EXISTS (SELECT * FROM hw_task t WHERE t.author = OLD.author);
END;

CREATE TRIGGER hw_do_del INSTEAD OF DELETE ON Do!.Todo FOR EACH ROW BEGIN
  DELETE FROM hw_task WHERE p = OLD.p;
  DELETE FROM hw_task_author WHERE p = OLD.p;
  DELETE FROM hw_author
    WHERE name = OLD.author
      AND NOT EXISTS (SELECT * FROM hw_task t WHERE t.author = OLD.author);
END;

-- ===== TasKy2 ===============================================================
CREATE VIEW TasKy2.Task AS
  SELECT t.p, t.task, t.prio, ta.author_p AS author
  FROM hw_task t LEFT JOIN hw_task_author ta ON ta.p = t.p;

CREATE VIEW TasKy2.Author AS SELECT p, name FROM hw_author;

CREATE TRIGGER hw_t2task_ins INSTEAD OF INSERT ON TasKy2.Task FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_task (p, author, task, prio)
    VALUES (NEW.p, (SELECT a.name FROM hw_author a WHERE a.p = NEW.author LIMIT 1), NEW.task, NEW.prio);
  INSERT INTO hw_task_author (p, author_p)
    SELECT NEW.p, NEW.author WHERE NEW.author IS NOT NULL;
END;

CREATE TRIGGER hw_t2task_upd INSTEAD OF UPDATE ON TasKy2.Task FOR EACH ROW BEGIN
  UPDATE hw_task
    SET task = NEW.task, prio = NEW.prio,
        author = (SELECT a.name FROM hw_author a WHERE a.p = NEW.author LIMIT 1)
    WHERE p = OLD.p;
  DELETE FROM hw_task_author WHERE p = OLD.p;
  INSERT INTO hw_task_author (p, author_p)
    SELECT OLD.p, NEW.author WHERE NEW.author IS NOT NULL;
  DELETE FROM hw_author
    WHERE p = OLD.author
      AND NOT EXISTS (SELECT * FROM hw_task_author ta WHERE ta.author_p = OLD.author);
END;

CREATE TRIGGER hw_t2task_del INSTEAD OF DELETE ON TasKy2.Task FOR EACH ROW BEGIN
  DELETE FROM hw_task WHERE p = OLD.p;
  DELETE FROM hw_task_author WHERE p = OLD.p;
  DELETE FROM hw_author
    WHERE p = OLD.author
      AND NOT EXISTS (SELECT * FROM hw_task_author ta WHERE ta.author_p = OLD.author);
END;

CREATE TRIGGER hw_t2author_ins INSTEAD OF INSERT ON TasKy2.Author FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_author (p, name) VALUES (NEW.p, NEW.name);
END;

CREATE TRIGGER hw_t2author_upd INSTEAD OF UPDATE ON TasKy2.Author FOR EACH ROW BEGIN
  UPDATE hw_author SET name = NEW.name WHERE p = OLD.p;
  UPDATE hw_task SET author = NEW.name
    WHERE p IN (SELECT ta.p FROM hw_task_author ta WHERE ta.author_p = OLD.p);
END;

CREATE TRIGGER hw_t2author_del INSTEAD OF DELETE ON TasKy2.Author FOR EACH ROW BEGIN
  UPDATE hw_task SET author = NULL
    WHERE p IN (SELECT ta.p FROM hw_task_author ta WHERE ta.author_p = OLD.p);
  DELETE FROM hw_task_author WHERE author_p = OLD.p;
  DELETE FROM hw_author WHERE p = OLD.p;
END;
|}

(* --- delta code for the evolved (TasKy2) materialization --------------------- *)

let evolved_delta_code =
  {|
-- ===== TasKy2 (now local) ===================================================
CREATE VIEW TasKy2.Task AS SELECT p, task, prio, author FROM hw_task2;
CREATE VIEW TasKy2.Author AS SELECT p, name FROM hw_author2;

CREATE TRIGGER hw2_t2task_ins INSTEAD OF INSERT ON TasKy2.Task FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_task2 (p, task, prio, author) VALUES (NEW.p, NEW.task, NEW.prio, NEW.author);
END;

CREATE TRIGGER hw2_t2task_upd INSTEAD OF UPDATE ON TasKy2.Task FOR EACH ROW BEGIN
  UPDATE hw_task2 SET task = NEW.task, prio = NEW.prio, author = NEW.author WHERE p = OLD.p;
END;

CREATE TRIGGER hw2_t2task_del INSTEAD OF DELETE ON TasKy2.Task FOR EACH ROW BEGIN
  DELETE FROM hw_task2 WHERE p = OLD.p;
END;

CREATE TRIGGER hw2_t2author_ins INSTEAD OF INSERT ON TasKy2.Author FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_author2 (p, name) VALUES (NEW.p, NEW.name);
END;

CREATE TRIGGER hw2_t2author_upd INSTEAD OF UPDATE ON TasKy2.Author FOR EACH ROW BEGIN
  UPDATE hw_author2 SET name = NEW.name WHERE p = OLD.p;
END;

CREATE TRIGGER hw2_t2author_del INSTEAD OF DELETE ON TasKy2.Author FOR EACH ROW BEGIN
  UPDATE hw_task2 SET author = NULL WHERE author = OLD.p;
  DELETE FROM hw_author2 WHERE p = OLD.p;
END;

-- ===== TasKy (compatibility view) ===========================================
-- orphaned authors resurface as omega-padded rows (the outer-join semantics
-- of the decomposition)
CREATE VIEW TasKy.Task AS
  SELECT t.p, a.name AS author, t.task, t.prio
  FROM hw_task2 t LEFT JOIN hw_author2 a ON a.p = t.author
  UNION ALL
  SELECT a.p, a.name, NULL, NULL
  FROM hw_author2 a
  WHERE NOT EXISTS (SELECT * FROM hw_task2 t WHERE t.author = a.p);

CREATE TRIGGER hw2_tasky_ins INSTEAD OF INSERT ON TasKy.Task FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_author2 (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author2 a WHERE a.name = NEW.author);
  INSERT INTO hw_task2 (p, task, prio, author)
    VALUES (NEW.p, NEW.task, NEW.prio,
            (SELECT a.p FROM hw_author2 a WHERE a.name = NEW.author LIMIT 1));
END;

CREATE TRIGGER hw2_tasky_upd INSTEAD OF UPDATE ON TasKy.Task FOR EACH ROW BEGIN
  INSERT INTO hw_author2 (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author2 a WHERE a.name = NEW.author);
  UPDATE hw_task2
    SET task = NEW.task, prio = NEW.prio,
        author = (SELECT a.p FROM hw_author2 a WHERE a.name = NEW.author LIMIT 1)
    WHERE p = OLD.p;
END;

CREATE TRIGGER hw2_tasky_del INSTEAD OF DELETE ON TasKy.Task FOR EACH ROW BEGIN
  DELETE FROM hw_task2 WHERE p = OLD.p;
END;

-- ===== Do! (compatibility view) =============================================
CREATE VIEW Do!.Todo AS
  SELECT t.p, a.name AS author, t.task
  FROM hw_task2 t LEFT JOIN hw_author2 a ON a.p = t.author
  WHERE t.prio = 1;

CREATE TRIGGER hw2_do_ins INSTEAD OF INSERT ON Do!.Todo FOR EACH ROW BEGIN
  SET NEW.p = COALESCE(NEW.p, NEXTVAL('hw'));
  INSERT INTO hw_author2 (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author2 a WHERE a.name = NEW.author);
  INSERT INTO hw_task2 (p, task, prio, author)
    VALUES (NEW.p, NEW.task, 1,
            (SELECT a.p FROM hw_author2 a WHERE a.name = NEW.author LIMIT 1));
END;

CREATE TRIGGER hw2_do_upd INSTEAD OF UPDATE ON Do!.Todo FOR EACH ROW BEGIN
  INSERT INTO hw_author2 (p, name)
    SELECT NEXTVAL('hw'), NEW.author
    WHERE NEW.author IS NOT NULL
      AND NOT EXISTS (SELECT * FROM hw_author2 a WHERE a.name = NEW.author);
  UPDATE hw_task2
    SET task = NEW.task,
        author = (SELECT a.p FROM hw_author2 a WHERE a.name = NEW.author LIMIT 1)
    WHERE p = OLD.p;
END;

CREATE TRIGGER hw2_do_del INSTEAD OF DELETE ON Do!.Todo FOR EACH ROW BEGIN
  DELETE FROM hw_task2 WHERE p = OLD.p;
END;
|}

(* --- the handwritten migration script ----------------------------------------- *)

let migration_teardown =
  {|
DROP TRIGGER hw_tasky_ins; DROP TRIGGER hw_tasky_upd; DROP TRIGGER hw_tasky_del;
DROP TRIGGER hw_do_ins; DROP TRIGGER hw_do_upd; DROP TRIGGER hw_do_del;
DROP TRIGGER hw_t2task_ins; DROP TRIGGER hw_t2task_upd; DROP TRIGGER hw_t2task_del;
DROP TRIGGER hw_t2author_ins; DROP TRIGGER hw_t2author_upd; DROP TRIGGER hw_t2author_del;
DROP VIEW TasKy.Task; DROP VIEW Do!.Todo; DROP VIEW TasKy2.Task; DROP VIEW TasKy2.Author;
|}

let migration_copy =
  {|
CREATE TABLE hw_task2 (p INTEGER PRIMARY KEY, task TEXT, prio INTEGER, author INTEGER);
CREATE TABLE hw_author2 (p INTEGER PRIMARY KEY, name TEXT);
CREATE INDEX hw_author2_name ON hw_author2 (name);
CREATE INDEX hw_task2_author ON hw_task2 (author);
INSERT INTO hw_author2 (p, name) SELECT p, name FROM hw_author;
INSERT INTO hw_task2 (p, task, prio, author)
  SELECT t.p, t.task, t.prio, ta.author_p
  FROM hw_task t LEFT JOIN hw_task_author ta ON ta.p = t.p;
DROP TABLE hw_task; DROP TABLE hw_author; DROP TABLE hw_task_author;
|}

(** The full handwritten migration (what the DBA would run instead of one
    MATERIALIZE line). *)
let migration_script =
  migration_teardown ^ migration_copy ^ evolved_delta_code

(** Everything the developer writes for the evolution step (both new schema
    versions), compared against the two BiDEL scripts. *)
let evolution_script = initial_delta_code

(* --- setup helpers --------------------------------------------------------------- *)

type materialization = Initial | Evolved

let setup ?(tasks = 0) ?(materialization = Initial) () =
  let db = Minidb.Engine.create () in
  ignore (Minidb.Engine.exec_script db initial_schema);
  ignore (Minidb.Engine.exec_script db initial_delta_code);
  let rng = Rng.create () in
  for i = 1 to tasks do
    (* draw in the same order as Tasky.load_tasks (no side effects in
       argument position: evaluation order is unspecified) *)
    let author = Rng.pick rng Tasky.authors in
    let prio = Tasky.random_prio rng in
    ignore
      (Minidb.Engine.execf db
         "INSERT INTO TasKy.Task (author, task, prio) VALUES ('%s', 'task-%d', %d)"
         author i prio)
  done;
  (match materialization with
  | Initial -> ()
  | Evolved -> ignore (Minidb.Engine.exec_script db migration_script));
  db

(** Run the handwritten migration on an existing handwritten database. *)
let migrate_to_evolved db = ignore (Minidb.Engine.exec_script db migration_script)
