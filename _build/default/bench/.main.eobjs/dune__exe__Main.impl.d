bench/main.ml: Arg Cmd Cmdliner Experiments Fmt List Micro String Term Unix
