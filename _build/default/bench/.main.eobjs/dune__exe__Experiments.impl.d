bench/experiments.ml: Array Bidel Fmt Inverda List Minidb Scenarios String
