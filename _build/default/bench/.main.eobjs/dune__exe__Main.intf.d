bench/main.mli:
