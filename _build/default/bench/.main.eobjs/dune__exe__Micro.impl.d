bench/micro.ml: Analyze Bechamel Benchmark Bidel Fmt Hashtbl Instance Inverda Lazy List Measure Minidb Scenarios Staged Test Time Toolkit
