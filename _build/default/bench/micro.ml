(** Bechamel micro-benchmarks: one [Test.make] per table/figure, measuring
    the core operation behind each experiment with proper warm-up and OLS
    regression (complementing the macro harness in {!Experiments}, which
    reproduces the full workload sweeps). Run via
    [dune exec bench/main.exe -- --bechamel]. *)

open Bechamel
open Toolkit

module I = Inverda.Api

(* shared fixtures, built once *)
let tasky_initial = lazy (Scenarios.Tasky.setup_full ~tasks:2_000 ())

let tasky_evolved =
  lazy
    (let t = Scenarios.Tasky.setup_full ~tasks:2_000 () in
     I.materialize t [ "TasKy2" ];
     t)

let hand_initial = lazy (Scenarios.Tasky_sql.setup ~tasks:2_000 ())

let counter = ref 0

let fresh () =
  incr counter;
  !counter

let tests =
  [
    (* Table 3: parsing + measuring the BiDEL evolution script *)
    Test.make ~name:"table3: parse bidel evolution"
      (Staged.stage (fun () ->
           ignore (Bidel.Parser.script_of_string Scenarios.Tasky.bidel_tasky2)));
    (* Section 8.1: full delta-code generation for the TasKy catalog *)
    Test.make ~name:"gen: regenerate delta code"
      (Staged.stage (fun () ->
           let t = Lazy.force tasky_initial in
           Inverda.Codegen.regenerate (I.database t) (I.genealogy t)));
    (* Figure 8: reads and writes per configuration *)
    Test.make ~name:"fig8: read TasKy2 (initial mat, generated)"
      (Staged.stage (fun () ->
           let t = Lazy.force tasky_initial in
           ignore
             (Minidb.Engine.query (I.database t)
                "SELECT task, prio FROM TasKy2.Task WHERE prio = 1")));
    Test.make ~name:"fig8: read TasKy2 (evolved mat, generated)"
      (Staged.stage (fun () ->
           let t = Lazy.force tasky_evolved in
           ignore
             (Minidb.Engine.query (I.database t)
                "SELECT task, prio FROM TasKy2.Task WHERE prio = 1")));
    Test.make ~name:"fig8: read TasKy2 (initial mat, handwritten)"
      (Staged.stage (fun () ->
           ignore
             (Minidb.Engine.query
                (Lazy.force hand_initial)
                "SELECT task, prio FROM TasKy2.Task WHERE prio = 1")));
    Test.make ~name:"fig8: insert TasKy (initial mat, generated)"
      (Staged.stage (fun () ->
           let t = Lazy.force tasky_initial in
           ignore
             (Minidb.Engine.execf (I.database t)
                "INSERT INTO TasKy.Task (author, task, prio) VALUES ('B', 'm%d', 2)"
                (fresh ()))));
    (* Figure 11/12: point reads at distance 0 vs distance 2 *)
    Test.make ~name:"fig12: point read, local"
      (Staged.stage (fun () ->
           let t = Lazy.force tasky_initial in
           ignore
             (Minidb.Engine.query (I.database t)
                "SELECT task FROM TasKy.Task WHERE p = 100")));
    Test.make ~name:"fig12: point read, 2 SMOs away"
      (Staged.stage (fun () ->
           let t = Lazy.force tasky_initial in
           ignore
             (Minidb.Engine.query (I.database t)
                "SELECT task FROM TasKy2.Task WHERE p = 100")));
    (* the formal evaluation: one full executable round trip *)
    Test.make ~name:"formal: split round trip (oracle)"
      (Staged.stage (fun () ->
           let inst =
             Bidel.Smo_semantics.instantiate
               ~smo:
                 (Bidel.Parser.smo_of_string
                    "SPLIT TABLE t INTO r WITH a < 3, s WITH a > 1")
               ~source_cols:(fun _ -> [ "a" ])
               ~name_src:(fun t -> "src!" ^ t)
               ~name_tgt:(fun t -> "tgt!" ^ t)
               ~aux_name:(fun k -> "aux!" ^ k)
               ~skolem_name:Bidel.Verify.skolem_name
           in
           let data =
             [
               ( "src!t",
                 List.init 16 (fun i ->
                     [| Minidb.Value.Int i; Minidb.Value.Int (i mod 5) |]) );
             ]
           in
           assert (Bidel.Verify.check_src inst data).Bidel.Verify.ok));
  ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"inverda" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun i -> Analyze.all ols i raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Fmt.pr "%-55s %12.1f ns/run (%s)@." test est name
          | _ -> Fmt.pr "%-55s (no estimate)@." test)
        tbl)
    results
