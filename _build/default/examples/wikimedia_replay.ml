(* Replaying a long schema-evolution history: a scaled-down version of the
   Wikimedia scenario (Section 8, Table 4 / Figure 12). Data written in any
   schema version is visible in all other versions, and the DBA can move the
   physical tables under any version.

   Run with: dune exec examples/wikimedia_replay.exe *)

module I = Inverda.Api

let () =
  let versions = 25 in
  Fmt.pr "building %d schema versions with the Table 4 SMO mix...@." versions;
  let api, names = Scenarios.Wikimedia.build ~versions () in
  List.iter
    (fun (name, n) -> if n > 0 then Fmt.pr "  %-14s %d@." name n)
    (Scenarios.Wikimedia.histogram api);

  let mid = names.(Array.length names / 2) in
  let last = names.(Array.length names - 1) in
  Fmt.pr "@.loading pages and links through %s...@." mid;
  Scenarios.Wikimedia.load api ~version:mid ~pages:200 ~links:600;

  let db = I.database api in
  let count version =
    Minidb.Engine.query_int db (Fmt.str "SELECT COUNT(*) FROM %s.page" version)
  in
  Fmt.pr "pages visible in v001: %d, in %s: %d, in %s: %d@." (count "v001") mid
    (count mid) last (count last);

  (* a write through the *first* version reaches the newest one *)
  ignore
    (Minidb.Engine.exec db
       "INSERT INTO v001.page (title, namespace) VALUES ('Fresh_Page', 0)");
  Fmt.pr "after insert through v001, %s sees %d pages@." last (count last);

  (* measure the read asymmetry of Figure 12 at this scale *)
  let timed version =
    let t0 = Unix.gettimeofday () in
    ignore
      (Minidb.Engine.query db (Scenarios.Wikimedia.query_link_count ~version));
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  Fmt.pr "@.link-join query cost (data at %s):@." mid;
  Fmt.pr "  on %-6s %6.2f ms@." "v001" (timed "v001");
  Fmt.pr "  on %-6s %6.2f ms@." mid (timed mid);
  Fmt.pr "  on %-6s %6.2f ms@." last (timed last);

  Fmt.pr "@.migrating the physical tables under %s...@." last;
  I.materialize api [ last ];
  Fmt.pr "  on %-6s %6.2f ms@." "v001" (timed "v001");
  Fmt.pr "  on %-6s %6.2f ms@." last (timed last);
  Fmt.pr "@.all %d versions still answer: %b@." versions
    (Array.for_all (fun v -> count v >= 0) names)
