(* Quickstart: two co-existing schema versions over one data set.

   Run with: dune exec examples/quickstart.exe *)

module I = Inverda.Api

let show t title sql =
  Fmt.pr "@.%s@.  %s@." title sql;
  let rel = I.query t sql in
  Fmt.pr "  %s@." (String.concat " | " rel.Minidb.Exec.rel_cols);
  List.iter
    (fun row ->
      Fmt.pr "  %s@."
        (String.concat " | "
           (Array.to_list (Array.map Minidb.Value.to_string row))))
    rel.Minidb.Exec.rel_rows

let () =
  let t = I.create () in

  (* 1. the first release defines its schema with BiDEL *)
  I.evolve t "CREATE SCHEMA VERSION v1 WITH CREATE TABLE person(name, city, zip);";
  ignore
    (I.exec_sql t
       "INSERT INTO v1.person (name, city, zip) VALUES \
        ('Ada', 'London', 'NW1'), ('Grace', 'New York', '10001'), \
        ('Edsger', 'Austin', '78701')");

  (* 2. release two normalizes the address into its own table — one BiDEL
        statement, and both versions stay fully readable and writable *)
  I.evolve t
    "CREATE SCHEMA VERSION v2 FROM v1 WITH \
       DECOMPOSE TABLE person INTO person(name), address(city, zip) ON FOREIGN KEY addr;";

  show t "v1 sees the flat table:" "SELECT name, city, zip FROM v1.person";
  show t "v2 sees the normalized tables:"
    "SELECT p.name, a.city FROM v2.person p JOIN v2.address a ON p.addr = a.p";

  (* 3. writes through either version are visible in both *)
  ignore
    (I.exec_sql t
       "INSERT INTO v1.person (name, city, zip) VALUES ('Barbara', 'London', 'NW1')");
  ignore (I.exec_sql t "UPDATE v2.address SET city = 'Cambridge' WHERE zip = '78701'");
  show t "v1 after writes through both versions:"
    "SELECT name, city, zip FROM v1.person";
  show t "v2 shares the deduplicated London address:"
    "SELECT a.p, a.city, COUNT(*) FROM v2.person p JOIN v2.address a ON p.addr = a.p \
     GROUP BY a.p, a.city";

  (* 4. the DBA moves the physical data under v2 — one line, nothing breaks *)
  I.materialize t [ "v2" ];
  Fmt.pr "@.after MATERIALIZE 'v2':@.%s@." (I.describe t);
  show t "v1 still answers:" "SELECT name, city FROM v1.person"
