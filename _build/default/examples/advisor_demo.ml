(* The materialization advisor: scoring every valid materialization schema
   against a workload profile and migrating to the best one — the "advisor
   tool" the paper sketches as an extension (Section 8.2).

   Run with: dune exec examples/advisor_demo.exe *)

module I = Inverda.Api
module G = Inverda.Genealogy

let mat_label gen mat =
  let labels =
    List.filter_map
      (fun id ->
        match (G.smo gen id).G.si_smo with
        | Bidel.Ast.Create_table _ -> None
        | smo -> Some (Bidel.Ast.smo_name smo))
      mat
  in
  if labels = [] then "{initial}" else "{" ^ String.concat ", " labels ^ "}"

let advise_for t profile =
  let gen = I.genealogy t in
  Fmt.pr "@.workload profile: %s@."
    (String.concat ", "
       (List.map (fun (v, w) -> Fmt.str "%s %.0f%%" v (w *. 100.0)) profile));
  match Inverda.Advisor.advise gen profile with
  | None -> Fmt.pr "  no candidates?@."
  | Some r ->
    List.iter
      (fun (mat, cost) ->
        Fmt.pr "  %-40s estimated cost %.2f%s@." (mat_label gen mat) cost
          (if mat = r.Inverda.Advisor.materialization then "   <- recommended" else ""))
      r.Inverda.Advisor.alternatives;
    let changed = Inverda.Advisor.advise_and_migrate (I.database t) gen profile in
    Fmt.pr "  migrated: %b; physical tables now: %s@." changed
      (String.concat ", "
         (List.map
            (fun v -> v.G.tv_table)
            (List.filter (G.is_physical gen) (G.all_table_versions gen))))

let () =
  let t = Scenarios.Tasky.setup_full ~tasks:500 () in
  Fmt.pr "three co-existing versions: %s@." (String.concat ", " (I.versions t));

  (* early days: everybody uses the original TasKy *)
  advise_for t [ ("TasKy", 0.9); ("Do!", 0.1); ("TasKy2", 0.0) ];

  (* the phone app takes over *)
  advise_for t [ ("TasKy", 0.2); ("Do!", 0.8); ("TasKy2", 0.0) ];

  (* everyone adopted TasKy2 *)
  advise_for t [ ("TasKy", 0.05); ("Do!", 0.05); ("TasKy2", 0.9) ];

  (* all versions still work after the advisor's migrations *)
  Fmt.pr "@.TasKy tasks: %d, Do! todos: %d, TasKy2 tasks: %d@."
    (I.query_int t "SELECT COUNT(*) FROM TasKy.Task")
    (I.query_int t "SELECT COUNT(*) FROM Do!.Todo")
    (I.query_int t "SELECT COUNT(*) FROM TasKy2.Task")
