(* The complete TasKy story of the paper (Section 2, Figure 1): the initial
   task manager, the Do! phone app, the normalized TasKy2 release, and the
   DBA's one-line migration.

   Run with: dune exec examples/tasky_story.exe *)

module I = Inverda.Api

let banner title = Fmt.pr "@.== %s ==@." title

let dump t sql =
  Fmt.pr "  %s@." sql;
  List.iter
    (fun row ->
      Fmt.pr "    %s@." (String.concat " | " (List.map Minidb.Value.to_string row)))
    (I.query_rows t sql)

let () =
  banner "Release 1: TasKy goes live";
  let t = I.create () in
  I.evolve t Scenarios.Tasky.bidel_initial;
  List.iter
    (fun (author, task, prio) ->
      ignore
        (I.exec_sql t
           (Fmt.str
              "INSERT INTO TasKy.Task (author, task, prio) VALUES ('%s', '%s', %d)"
              author task prio)))
    [
      ("Ann", "Organize party", 3);
      ("Ben", "Learn for exam", 2);
      ("Ann", "Write paper", 1);
      ("Ben", "Clean room", 1);
    ];
  dump t "SELECT author, task, prio FROM TasKy.Task";

  banner "A third party ships the Do! phone app";
  Fmt.pr "%s@." Scenarios.Tasky.bidel_do;
  I.evolve t Scenarios.Tasky.bidel_do;
  dump t "SELECT author, task FROM Do!.Todo";

  banner "Inserting through Do! lands in TasKy with priority 1";
  ignore (I.exec_sql t "INSERT INTO Do!.Todo (author, task) VALUES ('Ann', 'Ship Do!')");
  dump t "SELECT author, task, prio FROM TasKy.Task WHERE task = 'Ship Do!'";

  banner "Release 2: TasKy2 normalizes authors";
  Fmt.pr "%s@." Scenarios.Tasky.bidel_tasky2;
  I.evolve t Scenarios.Tasky.bidel_tasky2;
  dump t "SELECT task, prio, author FROM TasKy2.Task";
  dump t "SELECT p, name FROM TasKy2.Author";

  banner "All three versions are alive; a TasKy2 write reaches Do!";
  let ben = I.query_int t "SELECT p FROM TasKy2.Author WHERE name = 'Ben'" in
  ignore
    (I.exec_sql t
       (Fmt.str
          "INSERT INTO TasKy2.Task (task, prio, author) VALUES ('Review PR', 1, %d)"
          ben));
  dump t "SELECT author, task FROM Do!.Todo";

  banner "The DBA migrates the physical tables: MATERIALIZE 'TasKy2'";
  I.materialize t [ "TasKy2" ];
  Fmt.pr "%s" (I.describe t);

  banner "Nothing changed for any application";
  dump t "SELECT author, task, prio FROM TasKy.Task";
  dump t "SELECT author, task FROM Do!.Todo";

  banner "Renaming an author in TasKy2 renames it everywhere";
  ignore (I.exec_sql t "UPDATE TasKy2.Author SET name = 'Dr. Ann' WHERE name = 'Ann'");
  dump t "SELECT DISTINCT author FROM TasKy.Task";

  banner "Code size (Table 3)";
  let m name text =
    let x = Bidel.Metrics.measure text in
    Fmt.pr "  %-10s %a@." name Bidel.Metrics.pp x
  in
  m "BiDEL" (Scenarios.Tasky.bidel_do ^ Scenarios.Tasky.bidel_tasky2 ^ Scenarios.Tasky.bidel_migration);
  m "SQL" (Scenarios.Tasky_sql.evolution_script ^ Scenarios.Tasky_sql.migration_script)
