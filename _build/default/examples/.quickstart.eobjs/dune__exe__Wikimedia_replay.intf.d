examples/wikimedia_replay.mli:
