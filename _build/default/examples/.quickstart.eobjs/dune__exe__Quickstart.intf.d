examples/quickstart.mli:
