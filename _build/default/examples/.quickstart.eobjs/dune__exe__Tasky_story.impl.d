examples/tasky_story.ml: Bidel Fmt Inverda List Minidb Scenarios String
