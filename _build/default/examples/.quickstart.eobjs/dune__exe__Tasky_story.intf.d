examples/tasky_story.mli:
