examples/quickstart.ml: Array Fmt Inverda List Minidb String
