examples/advisor_demo.ml: Bidel Fmt Inverda List Scenarios String
