examples/wikimedia_replay.ml: Array Fmt Inverda List Minidb Scenarios Unix
