(* BiDEL: parser round trips and, centrally, the bidirectionality laws
   (conditions 26/27 of the paper) for every SMO template, checked against
   the Datalog evaluation oracle on both hand-picked and random data. *)

open Bidel
module Value = Minidb.Value
module S = Smo_semantics

let i n = Value.Int n

let s v = Value.Text v

(* --- parser -------------------------------------------------------------- *)

let roundtrip_smo str =
  let smo = Parser.smo_of_string str in
  let printed = Printer.smo_to_string smo in
  let smo2 = Parser.smo_of_string printed in
  Alcotest.(check string)
    ("stable print of " ^ str)
    printed
    (Printer.smo_to_string smo2)

let test_parse_smos () =
  List.iter roundtrip_smo
    [
      "CREATE TABLE Task(author,task,prio)";
      "DROP TABLE Task";
      "RENAME TABLE Task INTO Job";
      "RENAME COLUMN author IN author TO name";
      "ADD COLUMN prio AS 1 INTO Todo";
      "ADD COLUMN score AS prio * 2 + 1 INTO Task";
      "DROP COLUMN prio FROM Todo DEFAULT 1";
      "DROP COLUMN prio FROM Todo DEFAULT CASE WHEN author = 'Ann' THEN 1 ELSE 2 END";
      "DECOMPOSE TABLE task INTO task(task,prio), author(author) ON FOREIGN KEY author";
      "DECOMPOSE TABLE r INTO s(a,b), t(c) ON PK";
      "DECOMPOSE TABLE r INTO s(a,b)";
      "DECOMPOSE TABLE r INTO s(a), t(b) ON a = b";
      "JOIN TABLE r, s INTO t ON PK";
      "OUTER JOIN TABLE r, s INTO t ON PK";
      "JOIN TABLE task, author INTO t ON FOREIGN KEY author";
      "JOIN TABLE r, s INTO t ON x < y";
      "SPLIT TABLE Task INTO Todo WITH prio = 1";
      "SPLIT TABLE t INTO r WITH prio = 1, s WITH prio > 1";
      "MERGE TABLE r (prio = 1), s (prio > 1) INTO t";
    ]

let test_parse_script () =
  let script =
    {|
    CREATE SCHEMA VERSION Do! FROM TasKy WITH
      SPLIT TABLE Task INTO Todo WITH prio = 1;
      DROP COLUMN prio FROM Todo DEFAULT 1;
    CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
      DECOMPOSE TABLE task INTO task(task,prio), author(author) ON FOREIGN KEY author;
      RENAME COLUMN author IN author TO name;
    MATERIALIZE 'TasKy2';
    DROP SCHEMA VERSION Do!;
  |}
  in
  match Parser.script_of_string script with
  | [ Ast.Create_schema_version { name = "Do!"; from = Some "TasKy"; smos = [ _; _ ] };
      Ast.Create_schema_version { name = "TasKy2"; smos = [ _; _ ]; _ };
      Ast.Materialize [ "TasKy2" ];
      Ast.Drop_schema_version "Do!" ] ->
    ()
  | stmts -> Alcotest.failf "unexpected parse: %d statements" (List.length stmts)

let test_parse_errors () =
  let expect_fail str =
    match Parser.smo_of_string str with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ str)
  in
  List.iter expect_fail
    [ "SPLIT Task INTO Todo"; "DROP COLUMN x FROM t"; "MERGE TABLE a, b INTO c";
      "DECOMPOSE task INTO x(a)" ]

(* --- instantiation helpers ------------------------------------------------ *)

let make_inst schemas smo_str =
  let smo = Parser.smo_of_string smo_str in
  S.instantiate ~smo
    ~source_cols:(fun t ->
      match List.assoc_opt t schemas with
      | Some cols -> cols
      | None -> Alcotest.failf "unknown test table %s" t)
    ~name_src:(fun t -> "src!" ^ t)
    ~name_tgt:(fun t -> "tgt!" ^ t)
    ~aux_name:(fun k -> "aux!" ^ k)
    ~skolem_name:Verify.skolem_name

let check_both inst ~src ~tgt =
  let r1 = Verify.check_src inst src in
  if not r1.Verify.ok then
    Alcotest.failf "condition (27) violated:@.%s" (Verify.report_to_string r1);
  let r2 = Verify.check_tgt inst tgt in
  if not r2.Verify.ok then
    Alcotest.failf "condition (26) violated:@.%s" (Verify.report_to_string r2)

(* --- hand-picked round trips ---------------------------------------------- *)

let tasky_rows =
  [
    [| i 1; s "Ann"; s "Organize party"; i 3 |];
    [| i 2; s "Ben"; s "Learn for exam"; i 2 |];
    [| i 3; s "Ann"; s "Write paper"; i 1 |];
    [| i 4; s "Ben"; s "Clean room"; i 1 |];
  ]

let test_add_column () =
  let inst =
    make_inst [ ("t", [ "a"; "b" ]) ] "ADD COLUMN c AS a + 1 INTO t"
  in
  check_both inst
    ~src:[ ("src!t", [ [| i 1; i 10; i 20 |]; [| i 2; i 30; Value.Null |] ]) ]
    ~tgt:[ ("tgt!t", [ [| i 1; i 10; i 20; i 99 |]; [| i 2; i 30; i 40; Value.Null |] ]) ]

let test_drop_column () =
  let inst =
    make_inst [ ("t", [ "a"; "b"; "c" ]) ] "DROP COLUMN b FROM t DEFAULT 7"
  in
  check_both inst
    ~src:[ ("src!t", [ [| i 1; i 10; i 20; i 30 |]; [| i 2; i 1; Value.Null; i 3 |] ]) ]
    ~tgt:[ ("tgt!t", [ [| i 1; i 10; i 30 |] ]) ]

let test_rename_drop_create () =
  let inst = make_inst [ ("t", [ "a" ]) ] "RENAME TABLE t INTO u" in
  check_both inst
    ~src:[ ("src!t", [ [| i 1; i 5 |] ]) ]
    ~tgt:[ ("tgt!u", [ [| i 1; i 6 |] ]) ];
  let inst = make_inst [ ("t", [ "a"; "b" ]) ] "RENAME COLUMN a IN t TO z" in
  check_both inst
    ~src:[ ("src!t", [ [| i 1; i 5; i 6 |] ]) ]
    ~tgt:[ ("tgt!t", [ [| i 1; i 7; i 8 |] ]) ];
  let inst = make_inst [ ("t", [ "a" ]) ] "DROP TABLE t" in
  check_both inst ~src:[ ("src!t", [ [| i 1; i 5 |] ]) ] ~tgt:[]

let test_split_full () =
  let inst =
    make_inst
      [ ("task", [ "author"; "task"; "prio" ]) ]
      "SPLIT TABLE task INTO urgent WITH prio = 1, hot WITH prio <= 2"
  in
  (* overlapping conditions: prio = 1 rows are twins in both targets *)
  check_both inst
    ~src:[ ("src!task", tasky_rows) ]
    ~tgt:
      [
        (* twins, separated twins, lost twins, out-of-partition rows *)
        ( "tgt!urgent",
          [
            [| i 3; s "Ann"; s "Write paper"; i 1 |];
            [| i 5; s "Cleo"; s "Edited twin"; i 1 |];
          ] );
        ( "tgt!hot",
          [
            [| i 3; s "Ann"; s "Write paper"; i 1 |];
            [| i 5; s "Cleo"; s "Other twin value"; i 1 |];
            [| i 6; s "Dan"; s "Lost in urgent"; i 1 |];
            [| i 7; s "Eve"; s "Violates both"; i 9 |];
          ] );
      ]

let test_split_single () =
  let inst =
    make_inst
      [ ("task", [ "author"; "task"; "prio" ]) ]
      "SPLIT TABLE task INTO todo WITH prio = 1"
  in
  check_both inst
    ~src:[ ("src!task", tasky_rows) ]
    ~tgt:
      [
        ( "tgt!todo",
          [
            [| i 3; s "Ann"; s "Write paper"; i 1 |];
            [| i 9; s "Zoe"; s "Violates cond"; i 4 |];
          ] );
      ]

let test_merge () =
  let inst =
    make_inst
      [ ("r", [ "a"; "b" ]); ("q", [ "a"; "b" ]) ]
      "MERGE TABLE r (a = 1), q (a = 2) INTO t"
  in
  check_both inst
    ~src:
      [
        ("src!r", [ [| i 1; i 1; i 10 |]; [| i 2; i 5; i 20 |] ]);
        ("src!q", [ [| i 3; i 2; i 30 |]; [| i 1; i 1; i 10 |] ]);
      ]
    ~tgt:[ ("tgt!t", [ [| i 1; i 1; i 10 |]; [| i 2; i 2; i 20 |]; [| i 3; i 7; i 9 |] ]) ]

let test_decompose_pk () =
  let inst =
    make_inst
      [ ("r", [ "a"; "b"; "c" ]) ]
      "DECOMPOSE TABLE r INTO st(a,b), tt(c) ON PK"
  in
  check_both inst
    ~src:
      [ ("src!r", [ [| i 1; i 10; i 11; i 12 |]; [| i 2; i 20; i 21; Value.Null |] ]) ]
    ~tgt:
      [
        ("tgt!st", [ [| i 1; i 10; i 11 |]; [| i 3; i 5; i 6 |] ]);
        ("tgt!tt", [ [| i 1; i 12 |]; [| i 4; i 9 |] ]);
      ]

let test_decompose_projection () =
  let inst =
    make_inst [ ("r", [ "a"; "b"; "c" ]) ] "DECOMPOSE TABLE r INTO st(a,c)"
  in
  check_both inst
    ~src:[ ("src!r", [ [| i 1; i 10; i 11; i 12 |] ]) ]
    ~tgt:[ ("tgt!st", [ [| i 1; i 10; i 12 |] ]) ]

let test_outer_join_pk () =
  let inst =
    make_inst
      [ ("st", [ "a"; "b" ]); ("tt", [ "c" ]) ]
      "OUTER JOIN TABLE st, tt INTO r ON PK"
  in
  check_both inst
    ~src:
      [
        ("src!st", [ [| i 1; i 10; i 11 |]; [| i 2; i 20; i 21 |] ]);
        ("src!tt", [ [| i 1; i 12 |]; [| i 3; i 30 |] ]);
      ]
    ~tgt:[ ("tgt!r", [ [| i 1; i 10; i 11; i 12 |]; [| i 2; i 5; Value.Null; i 7 |] ]) ]

let test_inner_join_pk () =
  let inst =
    make_inst
      [ ("st", [ "a"; "b" ]); ("tt", [ "c" ]) ]
      "JOIN TABLE st, tt INTO r ON PK"
  in
  check_both inst
    ~src:
      [
        ("src!st", [ [| i 1; i 10; i 11 |]; [| i 2; i 20; i 21 |] ]);
        ("src!tt", [ [| i 1; i 12 |]; [| i 3; i 30 |] ]);
      ]
    ~tgt:[ ("tgt!r", [ [| i 1; i 10; i 11; i 12 |] ]) ]

let test_decompose_fk () =
  let inst =
    make_inst
      [ ("task", [ "task"; "prio"; "author" ]) ]
      "DECOMPOSE TABLE task INTO task(task,prio), author(author) ON FOREIGN KEY author"
  in
  (* Ann owns two tasks: the author table must be deduplicated; one task has
     no author at all. *)
  check_both inst
    ~src:
      [
        ( "src!task",
          [
            [| i 1; s "Organize party"; i 3; s "Ann" |];
            [| i 2; s "Learn for exam"; i 2; s "Ben" |];
            [| i 3; s "Write paper"; i 1; s "Ann" |];
            [| i 4; s "Orphan task"; i 1; Value.Null |];
          ] );
      ]
    ~tgt:
      [
        ( "tgt!task",
          [
            [| i 1; s "Organize party"; i 3; i 100 |];
            [| i 2; s "Learn for exam"; i 2; i 101 |];
            [| i 3; s "Write paper"; i 1; i 100 |];
            [| i 4; s "No author"; i 2; Value.Null |];
          ] );
        (* author 102 is an orphan: no task references it *)
        ("tgt!author", [ [| i 100; s "Ann" |]; [| i 101; s "Ben" |]; [| i 102; s "Cleo" |] ]);
      ]

let test_outer_join_fk () =
  let inst =
    make_inst
      [ ("task", [ "task"; "author" ]); ("person", [ "name" ]) ]
      "OUTER JOIN TABLE task, person INTO t ON FOREIGN KEY author"
  in
  check_both inst
    ~src:
      [
        ( "src!task",
          [
            [| i 1; s "Write"; i 100 |];
            [| i 2; s "Clean"; i 100 |];
            [| i 3; s "Rest"; Value.Null |];
          ] );
        ("src!person", [ [| i 100; s "Ann" |]; [| i 101; s "Ben" |] ]);
      ]
    ~tgt:
      [
        ( "tgt!t",
          [
            [| i 1; s "Write"; s "Ann" |];
            [| i 2; s "Clean"; s "Ann" |];
            [| i 3; s "Rest"; Value.Null |];
          ] );
      ]

let test_inner_join_fk () =
  let inst =
    make_inst
      [ ("task", [ "task"; "author" ]); ("person", [ "name" ]) ]
      "JOIN TABLE task, person INTO t ON FOREIGN KEY author"
  in
  check_both inst
    ~src:
      [
        ( "src!task",
          [ [| i 1; s "Write"; i 100 |]; [| i 3; s "Rest"; Value.Null |] ] );
        ("src!person", [ [| i 100; s "Ann" |]; [| i 101; s "Ben" |] ]);
      ]
    ~tgt:[ ("tgt!t", [ [| i 1; s "Write"; s "Ann" |] ]) ]

let test_decompose_cond () =
  let inst =
    make_inst
      [ ("r", [ "a"; "b" ]) ]
      "DECOMPOSE TABLE r INTO st(a), tt(b) ON a = b"
  in
  check_both inst
    ~src:[ ("src!r", [ [| i 1; i 10; i 10 |]; [| i 2; i 20; i 21 |] ]) ]
    ~tgt:
      [
        ("tgt!st", [ [| i 100; i 10 |]; [| i 101; i 33 |] ]);
        ("tgt!tt", [ [| i 200; i 10 |]; [| i 201; i 44 |] ]);
      ]

let test_join_cond () =
  let inst =
    make_inst
      [ ("st", [ "a" ]); ("tt", [ "b" ]) ]
      "JOIN TABLE st, tt INTO r ON a = b"
  in
  check_both inst
    ~src:
      [
        ("src!st", [ [| i 1; i 10 |]; [| i 2; i 20 |] ]);
        ("src!tt", [ [| i 3; i 10 |]; [| i 4; i 30 |] ]);
      ]
    ~tgt:[ ("tgt!r", [ [| i 500; i 10; i 10 |]; [| i 501; i 7; i 7 |] ]) ]

let test_outer_join_cond () =
  let inst =
    make_inst
      [ ("st", [ "a" ]); ("tt", [ "b" ]) ]
      "OUTER JOIN TABLE st, tt INTO r ON a = b"
  in
  check_both inst
    ~src:
      [
        ("src!st", [ [| i 1; i 10 |]; [| i 2; i 20 |] ]);
        ("src!tt", [ [| i 3; i 10 |]; [| i 4; i 30 |] ]);
      ]
    ~tgt:[ ("tgt!r", [ [| i 500; i 10; i 10 |]; [| i 2; i 20; Value.Null |] ]) ]

(* --- property-based round trips ------------------------------------------- *)

let qsuite =
  let open QCheck in
  (* payload values: small ints with occasional NULL, never all-NULL rows *)
  let payload_gen width =
    Gen.(
      list_size (0 -- 12)
        (array_size (return width)
           (oneof [ map (fun n -> Value.Int n) (0 -- 4); return Value.Null ])))
  in
  let keyed rows = List.mapi (fun k row -> Array.append [| i (k + 1) |] row) rows in
  let no_all_null rows =
    List.filter (fun r -> Array.exists (fun v -> not (Value.is_null v)) r) rows
  in
  let arb width = make (Gen.map no_all_null (payload_gen width)) in
  let prop_src name schemas smo_str width =
    Test.make ~name:("(27) " ^ name) ~count:60 (arb width) (fun rows ->
        let inst = make_inst schemas smo_str in
        let src_tables = List.map (fun (r : S.rel) -> r.S.rel_name) inst.S.sources in
        (* distribute the rows over the source tables round-robin *)
        let n = List.length src_tables in
        let data =
          List.mapi
            (fun j t ->
              ( t,
                keyed rows
                |> List.filteri (fun k _ -> k mod n = j)
                |> List.map (fun row ->
                       Array.sub row 0
                         (List.length
                            (List.nth inst.S.sources j).S.rel_cols)) ))
            src_tables
        in
        let r = Verify.check_src inst data in
        if not r.Verify.ok then
          Test.fail_reportf "condition 27 violated:@.%s" (Verify.report_to_string r)
        else true)
  in
  let split_tgt =
    (* condition (26) for SPLIT under adversarial target data: twins,
       separated twins, lost twins, rows violating the conditions *)
    Test.make ~name:"(26) split adversarial" ~count:100
      (pair (arb 1) (arb 1))
      (fun (lrows, rrows) ->
        let inst =
          make_inst [ ("t", [ "a" ]) ] "SPLIT TABLE t INTO r WITH a < 3, q WITH a > 1"
        in
        let data =
          [ ("tgt!r", keyed lrows); ("tgt!q", keyed rrows) ]
        in
        let r = Verify.check_tgt inst data in
        if not r.Verify.ok then
          Test.fail_reportf "condition 26 violated:@.%s" (Verify.report_to_string r)
        else true)
  in
  let join_pk_tgt =
    Test.make ~name:"(26) outer join pk random" ~count:100
      (pair (arb 1) (arb 1))
      (fun (lrows, rrows) ->
        let inst =
          make_inst
            [ ("st", [ "a" ]); ("tt", [ "b" ]) ]
            "OUTER JOIN TABLE st, tt INTO r ON PK"
        in
        let data = [ ("src!st", keyed lrows); ("src!tt", keyed rrows) ] in
        let r = Verify.check_src inst data in
        if not r.Verify.ok then
          Test.fail_reportf "violated:@.%s" (Verify.report_to_string r)
        else true)
  in
  let fk_tgt =
    (* condition (26) for the FK decompose under referentially consistent
       target data: partners with ids 100.., fks drawn from them or NULL,
       plus orphan partners *)
    Test.make ~name:"(26) decompose fk consistent" ~count:80
      (pair (arb 1) (small_nat))
      (fun (trows, nulls) ->
        let inst =
          make_inst [ ("r", [ "a"; "b" ]) ]
            "DECOMPOSE TABLE r INTO st(a), tt(b) ON FOREIGN KEY fk"
        in
        let tt =
          List.mapi
            (fun idx row -> Array.append [| Value.Int (100 + idx) |] row)
            trows
        in
        ignore nulls;
        let tids = List.map (fun row -> row.(0)) tt in
        let st =
          List.mapi
            (fun j _ ->
              let fk =
                if j mod 3 = 2 || tids = [] then Value.Null
                else List.nth tids (j mod List.length tids)
              in
              [| Value.Int (j + 1); Value.Int j; fk |])
            trows
        in
        let data = [ ("tgt!st", st); ("tgt!tt", tt) ] in
        let r = Verify.check_tgt inst data in
        if not r.Verify.ok then
          Test.fail_reportf "condition 26 violated:@.%s" (Verify.report_to_string r)
        else true)
  in
  let chain_law =
    (* the chains-of-SMOs law (51): data round trips through SPLIT followed
       by ADD COLUMN with no loss or gain *)
    Test.make ~name:"(51) chain SPLIT ; ADD COLUMN" ~count:60 (arb 1)
      (fun rows ->
        let split =
          make_inst [ ("t", [ "a" ]) ] "SPLIT TABLE t INTO r WITH a < 3, q WITH a > 1"
        in
        let addcol =
          Bidel.Smo_semantics.instantiate
            ~smo:(Parser.smo_of_string "ADD COLUMN c AS a + 1 INTO r")
            ~source_cols:(fun _ -> [ "a" ])
            ~name_src:(fun t -> "tgt!" ^ t)  (* chained onto split's target *)
            ~name_tgt:(fun t -> "tgt2!" ^ t)
            ~aux_name:(fun k -> "aux2!" ^ k)
            ~skolem_name:Verify.skolem_name
        in
        let keyed =
          List.mapi (fun k row -> Array.append [| Value.Int (k + 1) |] row) rows
        in
        let src = [ ("src!t", keyed) ] in
        let engine = Verify.test_engine () in
        (* forward through both SMOs *)
        let mid = Datalog.Eval.eval ~engine split.Bidel.Smo_semantics.gamma_tgt src in
        let far = Datalog.Eval.eval ~engine addcol.Bidel.Smo_semantics.gamma_tgt mid in
        (* and back *)
        let mid' =
          Datalog.Eval.eval ~engine addcol.Bidel.Smo_semantics.gamma_src
            (far @ mid)
        in
        (* the split's other target q and its aux T' come from the first hop *)
        let back_input =
          mid' @ List.filter (fun (n, _) -> not (List.mem_assoc n mid')) mid
        in
        let out = Datalog.Eval.eval ~engine split.Bidel.Smo_semantics.gamma_src back_input in
        Datalog.Eval.same_tuples
          (Option.value (List.assoc_opt "src!t" out) ~default:[])
          keyed)
  in
  List.map QCheck_alcotest.to_alcotest
    [
      fk_tgt;
      chain_law;
      prop_src "add column" [ ("t", [ "a"; "b" ]) ] "ADD COLUMN c AS a + 1 INTO t" 2;
      prop_src "drop column" [ ("t", [ "a"; "b" ]) ] "DROP COLUMN b FROM t DEFAULT 0" 2;
      prop_src "split" [ ("t", [ "a" ]) ] "SPLIT TABLE t INTO r WITH a < 3, q WITH a > 1" 1;
      prop_src "split single" [ ("t", [ "a" ]) ] "SPLIT TABLE t INTO r WITH a < 2" 1;
      prop_src "merge"
        [ ("r", [ "a" ]); ("q", [ "a" ]) ]
        "MERGE TABLE r (a < 3), q (a > 1) INTO t" 1;
      prop_src "decompose pk" [ ("r", [ "a"; "b" ]) ]
        "DECOMPOSE TABLE r INTO st(a), tt(b) ON PK" 2;
      prop_src "decompose fk" [ ("r", [ "a"; "b" ]) ]
        "DECOMPOSE TABLE r INTO st(a), tt(b) ON FOREIGN KEY fk" 2;
      prop_src "decompose cond" [ ("r", [ "a"; "b" ]) ]
        "DECOMPOSE TABLE r INTO st(a), tt(b) ON a = b" 2;
      prop_src "join pk"
        [ ("st", [ "a" ]); ("tt", [ "b" ]) ]
        "JOIN TABLE st, tt INTO r ON PK" 1;
      prop_src "join cond"
        [ ("st", [ "a" ]); ("tt", [ "b" ]) ]
        "JOIN TABLE st, tt INTO r ON a = b" 1;
      split_tgt;
      join_pk_tgt;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bidel"
    [
      ( "parser",
        [
          tc "smos" test_parse_smos;
          tc "script" test_parse_script;
          tc "errors" test_parse_errors;
        ] );
      ( "roundtrip",
        [
          tc "add column" test_add_column;
          tc "drop column" test_drop_column;
          tc "rename/drop/create" test_rename_drop_create;
          tc "split full" test_split_full;
          tc "split single" test_split_single;
          tc "merge" test_merge;
          tc "decompose pk" test_decompose_pk;
          tc "decompose projection" test_decompose_projection;
          tc "outer join pk" test_outer_join_pk;
          tc "inner join pk" test_inner_join_pk;
          tc "decompose fk" test_decompose_fk;
          tc "outer join fk" test_outer_join_fk;
          tc "inner join fk" test_inner_join_fk;
          tc "decompose cond" test_decompose_cond;
          tc "join cond" test_join_cond;
          tc "outer join cond" test_outer_join_cond;
        ] );
      ("properties", qsuite);
    ]
