test/test_bidel.mli:
