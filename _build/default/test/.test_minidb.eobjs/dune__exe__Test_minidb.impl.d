test/test_minidb.ml: Alcotest Database Engine Exec Gen List Minidb QCheck QCheck_alcotest Sql_ast Sql_lexer Sql_parser Sql_printer Table Test Value
