test/test_datalog.ml: Alcotest Bidel Datalog List Minidb String
