test/test_bidel.ml: Alcotest Array Ast Bidel Datalog Gen List Minidb Option Parser Printer QCheck QCheck_alcotest Smo_semantics Test Verify
