test/test_inverda.ml: Alcotest Astring Bidel Fmt Inverda List Minidb
