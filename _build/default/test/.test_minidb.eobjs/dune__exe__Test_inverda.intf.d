test/test_inverda.mli:
