test/test_scenarios.ml: Alcotest Array Bidel Fmt Gen Inverda List Minidb Printexc QCheck QCheck_alcotest Scenarios
